// Compiled timing plans: the per-combination evaluator of the design space.
//
// DTAS's search control (paper §5) only works because evaluating one
// candidate out of "several hundred thousand to several million alternative
// designs" is cheap. The functional evaluator
// (DesignSpace::eval_template) re-derives everything per call: it rebuilds
// string-keyed port views, resolves port directions through
// genus::find_port, allocates per-net arrival vectors, and re-reads
// per-bit arrival times — for every odometer combination of the same
// template.
//
// A TimingPlan compiles a template once, when its ImplNode is created.
// The key observation is that the bit-granular arrival buffer is only an
// intermediate encoding: every net bit has a fixed set of writers, so the
// bit-level propagation collapses into a step DAG whose edges are
// pre-resolved integer predecessor lists (false paths already filtered
// through genus::output_depends_on at compile time, multi-writer and
// write-after-read corner cases resolved by schedule position). Each
// combination is then one linear pass over the steps: no string compares,
// no find_port, no per-bit work, no allocation (callers reuse one scratch
// buffer of per-step completion times).
//
// The plan reproduces the functional evaluator bit-for-bit: area is summed
// in instance order (not grouped per child, which would reassociate
// floating-point addition), and each step applies the same max/add
// operations to the same operand values the reference evaluator reads out
// of its arrival buffer.
#pragma once

#include <string>
#include <vector>

#include "base/symbol.h"
#include "genus/spec.h"
#include "netlist/netlist.h"

namespace bridge::dtas {

/// One scheduled evaluation step: an instance and one of its output ports.
/// Scheduling is per output port (not per instance) so that false paths —
/// e.g. a look-ahead generator's GP/GG outputs, which do not depend on its
/// carry input — do not create spurious combinational cycles.
struct EvalStep {
  int instance = -1;
  base::Symbol port;
};
using EvalSchedule = std::vector<EvalStep>;

/// Reusable mutable state of one plan evaluation. A TimingPlan is
/// immutable after compile() and freely shared across threads; everything
/// a combination evaluation writes lives here instead. The sharded
/// odometer owns one EvalScratch per worker thread (never per plan and
/// never shared), which is what makes concurrent shard evaluation
/// race-free by construction.
struct EvalScratch {
  std::vector<double> times;        // per-plan-node completion times
  std::vector<double> child_area;   // per-distinct-child metrics of the
  std::vector<double> child_delay;  //   combination being evaluated
};

class TimingPlan {
 public:
  TimingPlan() = default;

  /// Compile `tmpl` against its topological schedule. `child_specs` lists
  /// the distinct child specifications of the implementation (in the order
  /// the caller indexes child metrics); every instance spec must equal one
  /// of them. Throws Error otherwise.
  static TimingPlan compile(
      const netlist::Module& tmpl, const EvalSchedule& topo,
      const std::vector<const genus::ComponentSpec*>& child_specs);

  bool compiled() const { return compiled_; }
  int num_children() const { return static_cast<int>(child_on_path_.size()); }
  int num_instances() const { return static_cast<int>(inst_child_.size()); }

  /// Distinct-child index of each template instance, in instance order.
  /// Extraction uses this instead of re-scanning children by spec.
  const std::vector<int>& instance_child() const { return inst_child_; }

  /// Template area for one child-choice combination: the sum of
  /// child_area[child] over instances, in instance order (bit-identical to
  /// the functional evaluator's accumulation).
  double area(const double* child_area) const {
    double total = 0.0;
    for (int c : inst_child_) total += child_area[c];
    return total;
  }

  /// Longest structural path for one combination. `child_delay` holds one
  /// delay per distinct child; `scratch` is the calling thread's scratch
  /// state, whose `times` buffer is resized here so repeated calls never
  /// allocate once it has grown to the plan's node count.
  double delay(const double* child_delay, EvalScratch& scratch) const;

  /// Rough resident size in bytes (vector capacities). Feeds the template
  /// cache's byte accounting; proportionality matters, exactness doesn't.
  std::size_t approx_footprint_bytes() const {
    return sizeof(TimingPlan) + inst_child_.capacity() * sizeof(int) +
           child_on_path_.capacity() + seq_.capacity() * sizeof(SeqStep) +
           steps_.capacity() * sizeof(Step) + preds_.capacity() * sizeof(int);
  }

  /// Cheap lower bound on delay(): the worst delay among children with at
  /// least one instance on a timing path (every such instance pins the
  /// worst path to at least its own delay). Used to skip a combination
  /// before even the one-pass delay propagation runs.
  double delay_lower_bound(const double* child_delay) const {
    double lb = 0.0;
    for (size_t c = 0; c < child_on_path_.size(); ++c) {
      if (child_on_path_[c] && child_delay[c] > lb) lb = child_delay[c];
    }
    return lb;
  }

 private:
  // Node numbering for the collapsed DAG: sequential launches first (their
  // completion time is their clock-to-q delay), then the combinational
  // steps in schedule order. preds_ holds flattened spans of node indices.
  struct Step {
    int child = -1;            // distinct-child index (delay lookup)
    int pred_begin = 0, pred_end = 0;  // span into preds_
  };
  struct SeqStep {
    int child = -1;
    int setup_begin = 0, setup_end = 0;  // span into preds_ (path sinks)
  };

  bool compiled_ = false;
  std::vector<int> inst_child_;  // instance -> distinct-child index
  std::vector<unsigned char> child_on_path_;
  std::vector<SeqStep> seq_;     // nodes [0, seq_.size())
  std::vector<Step> steps_;      // nodes [seq_.size(), ...), topo order
  std::vector<int> preds_;       // flattened predecessor node indices
};

}  // namespace bridge::dtas
