// DTAS front door: synthesize generic components or whole GENUS netlists
// into sets of alternative, hierarchical, library-specific netlists.
//
// "The output of DTAS is a set of alternative implementations of the input
// netlist. Each implementation is represented as a hierarchical netlist
// that traces the top-down design of the input netlist into subcomponents.
// Leaves of each hierarchical netlist map the alternative design to cells
// drawn from the given RTL library." (paper §3)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dtas/design_space.h"

namespace bridge::dtas {

/// One alternative implementation: metrics plus the hierarchical netlist.
struct AlternativeDesign {
  Metric metric;
  std::shared_ptr<netlist::Design> design;  // top() is the implementation
  std::string description;                  // top-level rule/cell trace
};

/// Assemble the rule base DTAS uses for a given data book: the standard
/// generic rules plus the library-specific rules — the paper's nine
/// hand-written rules for the LSI-style book, LOLA-induced rules for any
/// other library (built-in TTL, parsed data-book text, Liberty imports).
RuleBase default_rules_for(const cells::CellLibrary& library);

class Synthesizer {
 public:
  /// Takes ownership of the rule base.
  Synthesizer(RuleBase rules, const cells::CellLibrary& library,
              SpaceOptions options = {});

  /// Convenience: default_rules_for(library).
  Synthesizer(const cells::CellLibrary& library, SpaceOptions options = {});

  /// Synthesize one component specification. Returns the filtered set of
  /// alternative designs, sorted by ascending area. Empty when the library
  /// cannot realize the specification.
  std::vector<AlternativeDesign> synthesize(const genus::ComponentSpec& spec);

  /// Synthesize a netlist of GENUS component instances (the output of
  /// high-level synthesis). The uniform-implementation constraint applies
  /// across the netlist: instances with the same specification share one
  /// implementation choice.
  std::vector<AlternativeDesign> synthesize_netlist(
      const netlist::Module& input);

  DesignSpace& space() { return space_; }
  const DesignSpace& space() const { return space_; }

 private:
  RuleBase rules_;
  DesignSpace space_;
};

/// Map a cell's ports onto the ports of the specification it implements.
/// Unmatched cell inputs receive data-book tie-offs (carry-in 0, enable 1,
/// asyncs 0, MODE 0/1 for adder/subtractor promotion); unmatched outputs
/// are left open. Requires genus::spec_implements(cell_spec, need).
struct PortBinding {
  enum class Kind { kPort, kConst, kOpen };
  Kind kind = Kind::kOpen;
  base::Symbol need_port;   // kPort
  std::uint64_t value = 0;  // kConst
};
std::vector<std::pair<base::Symbol, PortBinding>> cell_binding(
    const genus::ComponentSpec& cell_spec, const genus::ComponentSpec& need);

}  // namespace bridge::dtas
