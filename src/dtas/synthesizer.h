// DTAS front door: synthesize generic components or whole GENUS netlists
// into sets of alternative, hierarchical, library-specific netlists.
//
// "The output of DTAS is a set of alternative implementations of the input
// netlist. Each implementation is represented as a hierarchical netlist
// that traces the top-down design of the input netlist into subcomponents.
// Leaves of each hierarchical netlist map the alternative design to cells
// drawn from the given RTL library." (paper §3)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "dtas/design_space.h"
#include "lint/lint.h"
#include "obs/profile.h"

namespace bridge::dtas {

/// One alternative implementation: metrics plus the hierarchical netlist.
struct AlternativeDesign {
  Metric metric;
  std::shared_ptr<netlist::Design> design;  // top() is the implementation
  std::string description;                  // top-level rule/cell trace
};

/// Per-Synthesizer cache of materialized implementation subtrees — the
/// TemplateCache pattern one layer down. The alternatives of one front
/// share almost all of their subtrees (the paper's hierarchical netlists
/// trace a shared decomposition), so each distinct (SpecNode, alternative)
/// pair is materialized exactly once as an immutable shared module and
/// referenced by every AlternativeDesign that contains it
/// (netlist::Design::reference_module keeps it alive per design).
///
/// Keying is delta-aware: the public interface still speaks
/// (SpecNode*, alternative), but entries are stored under the node's
/// *content* fingerprint (SpecNode::slice_fp — the spec plus everything
/// the expanded subtree bound: cells, rules, children). Pointers die with
/// their DesignSpace; content keys survive Synthesizer::retarget, so
/// swinging to a different library and back (or to a library with
/// identical content) re-extracts nothing that was already materialized.
/// With SpaceOptions::delta_cache_keys off the cache falls back to
/// pointer identity — the reference path retarget cannot reuse.
///
/// The cache also owns two session-wide tables both extraction paths use:
///  - the module name table: names are unique across the whole session
///    (two distinct nodes whose sanitized spec keys collide get "_u<k>"
///    uniquifiers), so a shared module can appear in any design, and the
///    cache-off reference path names every module identically;
///  - the memoized implementation traces behind Describer.
///
/// Lifecycle: modules are byte-accounted, and under a budget
/// (set_budget_bytes / SpaceOptions::extraction_cache_budget_bytes /
/// BRIDGE_CACHE_BUDGET) inserts evict least-recently-used modules no
/// live design references (use_count == 1 — designs returned by
/// synthesize pin their modules automatically). The name table and
/// describe memos survive eviction on purpose: a re-materialized module
/// gets its original session name, so output stays byte-identical under
/// any eviction schedule.
///
/// Not thread-safe: one synthesize call at a time, like the Synthesizer
/// that owns it. The concurrency model is one Synthesizer (and thus one
/// ExtractionCache) per thread; the process-wide TemplateCache is the
/// shared layer.
class ExtractionCache {
 public:
  struct Stats {
    long hits = 0;       // find() calls served a shared module
    long misses = 0;     // modules materialized (and published)
    long evictions = 0;  // modules evicted under the byte budget
    long bytes = 0;      // resident footprint estimate
  };

  ExtractionCache();
  ~ExtractionCache();
  ExtractionCache(const ExtractionCache&) = delete;
  ExtractionCache& operator=(const ExtractionCache&) = delete;

  /// Session-unique, VHDL-legal module name for (node, alt). Memoized;
  /// first-request order fixes uniquifier assignment, and the cache-on
  /// and cache-off paths request names in the same order.
  const std::string& name_for(const SpecNode* node, int alt_index);

  /// Uniquify `base` against every name this session handed out: the
  /// first request returns `base` itself, collisions get "_u<k>"
  /// appended. Exposed for name_for and its regression tests.
  std::string unique_name(const std::string& base);

  /// Shared module for (node, alt); nullptr when not yet materialized.
  std::shared_ptr<const netlist::Module> find(const SpecNode* node,
                                              int alt_index);

  /// Publish a materialized module; returns the stored pointer (by
  /// value: the budget sweep the insert may trigger can evict other
  /// entries, and map references are not stable across that).
  /// `children` are the shared modules `module` holds raw instance
  /// pointers into: the entry co-owns them, so eviction can never
  /// reclaim a child while a resident parent still points at it.
  std::shared_ptr<const netlist::Module> insert(
      const SpecNode* node, int alt_index,
      std::shared_ptr<const netlist::Module> module,
      std::vector<std::shared_ptr<const netlist::Module>> children = {});

  /// Memoized (node, alternative, depth) implementation traces, shared by
  /// every Describer of the session (see synthesizer.cpp). The table is
  /// private state — callers get a lookup and a publish, not the map
  /// (handing the mutable map across the session boundary let any caller
  /// corrupt memoized traces out from under later synthesize calls).
  /// Keyed by node_key() like the modules, so traces too survive
  /// retargeting.
  using DescribeKey = std::tuple<std::uint64_t, int, int>;
  /// Memoized trace for `key`; nullptr when absent. The pointer stays
  /// valid for the cache's lifetime (traces survive eviction).
  const std::string* find_describe(const DescribeKey& key) const;
  /// Publish the trace for `key` (first writer wins); returns the stored
  /// text.
  const std::string& memoize_describe(const DescribeKey& key,
                                      std::string text);
  /// Distinct memoized traces (diagnostics / tests).
  std::size_t describe_memo_size() const { return describe_memo_.size(); }

  /// The cache identity of `node` — its content fingerprint
  /// (SpecNode::slice_fp, only valid once expanded) under delta-aware
  /// keys, its address under the pointer-keyed reference mode. Exposed
  /// so Describer (and tests) can build DescribeKeys consistently.
  std::uint64_t node_key(const SpecNode* node) const;

  /// Select content (delta-aware, default) vs pointer keying. Must be
  /// chosen before the first use of the session: flipping it mid-session
  /// would split the tables. The Synthesizer wires this to
  /// SpaceOptions::delta_cache_keys at construction.
  void set_content_keys(bool content) { content_keys_ = content; }
  bool content_keys() const { return content_keys_; }

  /// Byte budget; 0 = unbounded. The constructor takes the
  /// BRIDGE_CACHE_BUDGET default. Setting a budget sweeps immediately;
  /// modules still referenced by live designs are never evicted, so the
  /// budget is a target, not a hard cap.
  void set_budget_bytes(std::size_t budget);
  std::size_t budget_bytes() const { return budget_; }

  const Stats& stats() const { return stats_; }
  /// Distinct modules resident (evicted ones no longer count).
  std::size_t size() const { return modules_.size(); }

  /// Drop every table — modules, names, describe memos. Cumulative stats
  /// survive (they count session work, not residency). Only the
  /// pointer-keyed retarget path needs this: once the old DesignSpace is
  /// destroyed its node addresses can be recycled, so stale pointer keys
  /// could falsely hit. Content keys never need invalidation.
  void clear();

 private:
  using Key = std::pair<std::uint64_t, int>;  // (node_key(node), alt)
  struct Entry {
    std::shared_ptr<const netlist::Module> module;
    /// Subtree pins: the modules `module`'s instances point at. Their
    /// bytes are accounted by their own entries; these refs only keep
    /// use_count > 1 so the LRU sweep sees them as pinned while this
    /// parent is resident.
    std::vector<std::shared_ptr<const netlist::Module>> children;
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;
  };

  /// Evict LRU unreferenced modules until resident bytes fit the budget.
  void evict_to_budget();

  std::map<Key, Entry> modules_;
  std::map<Key, std::string> names_;
  std::map<std::string, int> name_uses_;  // base -> names handed out
  std::map<DescribeKey, std::string> describe_memo_;
  bool content_keys_ = true;
  std::size_t budget_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

/// Assemble the rule base DTAS uses for a given data book: the standard
/// generic rules plus the library-specific rules — the paper's nine
/// hand-written rules for the LSI-style book, LOLA-induced rules for any
/// other library (built-in TTL, parsed data-book text, Liberty imports).
RuleBase default_rules_for(const cells::CellLibrary& library);

/// Which library-specific flavor default_rules_for would pick: "lsi" for
/// the paper's hand-written LSI rules, "lola" for induced rules. Part of
/// any cache/session identity that spans libraries (the server keys warm
/// sessions on content fingerprint + this), because two libraries with
/// different flavors expand through different rule sets even when their
/// cell content matched.
std::string default_rules_flavor(const cells::CellLibrary& library);

class Synthesizer {
 public:
  /// Takes ownership of the rule base.
  Synthesizer(RuleBase rules, const cells::CellLibrary& library,
              SpaceOptions options = {});

  /// Convenience: default_rules_for(library).
  Synthesizer(const cells::CellLibrary& library, SpaceOptions options = {});

  /// Synthesize one component specification. Returns the filtered set of
  /// alternative designs, sorted by ascending area. Empty when the library
  /// cannot realize the specification.
  std::vector<AlternativeDesign> synthesize(const genus::ComponentSpec& spec);

  /// Synthesize a netlist of GENUS component instances (the output of
  /// high-level synthesis). The uniform-implementation constraint applies
  /// across the netlist: instances with the same specification share one
  /// implementation choice.
  std::vector<AlternativeDesign> synthesize_netlist(
      const netlist::Module& input);

  /// Swing the session to a different cell library: rebuild the rule base
  /// (default_rules_for) and the design space, preserving the space
  /// options. The extraction cache — modules, session names, memoized
  /// traces — is deliberately kept: its entries are keyed by content
  /// fingerprint, so retargeting back to a library with identical content
  /// finds every previously materialized subtree warm, while changed
  /// content simply misses (the soundness is in the key, not in any
  /// invalidation sweep). The process-wide TemplateCache likewise carries
  /// over by construction. With delta_cache_keys off the kept entries are
  /// unreachable (pointer keys die with the old space) — correct, just
  /// cold.
  void retarget(const cells::CellLibrary& library);

  /// As above with an explicit rule base (takes ownership).
  void retarget(RuleBase rules, const cells::CellLibrary& library);

  DesignSpace& space() { return *space_; }
  const DesignSpace& space() const { return *space_; }

  /// The session-wide extraction cache (shared modules, module names,
  /// memoized traces). Persists across synthesize calls, so a repeated
  /// synthesis over the same space extracts on a warm cache.
  ExtractionCache& extraction_cache() { return extract_cache_; }
  const ExtractionCache& extraction_cache() const { return extract_cache_; }

  /// Structured breakdown of the most recent synthesize /
  /// synthesize_netlist call: wall time per phase (expand / evaluate /
  /// extract) plus this-call deltas of the space and cache counters.
  /// Always populated — profiling reads clocks only at phase granularity,
  /// so it is not gated. Overwritten by the next call.
  const obs::Profile& last_profile() const { return profile_; }

 private:
  RuleBase rules_;
  /// optional only so retarget() can destroy-and-rebuild in place (the
  /// space holds a reference to rules_ and is neither movable nor
  /// assignable); engaged for the Synthesizer's whole life otherwise.
  std::optional<DesignSpace> space_;
  ExtractionCache extract_cache_;
  /// Session memo for SpaceOptions::verify_designs: shared extraction
  /// modules are linted once per session, not once per design per call.
  /// Entries track their module weakly, so verdicts never dangle and
  /// extraction-cache eviction is never blocked — see lint::Cache.
  /// Survives retarget like the extraction cache.
  lint::Cache lint_cache_;
  obs::Profile profile_;
};

/// Map a cell's ports onto the ports of the specification it implements.
/// Unmatched cell inputs receive data-book tie-offs (carry-in 0, enable 1,
/// asyncs 0, MODE 0/1 for adder/subtractor promotion); unmatched outputs
/// are left open. Requires genus::spec_implements(cell_spec, need).
struct PortBinding {
  enum class Kind { kPort, kConst, kOpen };
  Kind kind = Kind::kOpen;
  genus::PortDir dir = genus::PortDir::kIn;  // direction of the cell port
  base::Symbol need_port;   // kPort
  std::uint64_t value = 0;  // kConst
};
std::vector<std::pair<base::Symbol, PortBinding>> cell_binding(
    const genus::ComponentSpec& cell_spec, const genus::ComponentSpec& need);

}  // namespace bridge::dtas
