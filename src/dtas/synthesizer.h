// DTAS front door: synthesize generic components or whole GENUS netlists
// into sets of alternative, hierarchical, library-specific netlists.
//
// "The output of DTAS is a set of alternative implementations of the input
// netlist. Each implementation is represented as a hierarchical netlist
// that traces the top-down design of the input netlist into subcomponents.
// Leaves of each hierarchical netlist map the alternative design to cells
// drawn from the given RTL library." (paper §3)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "dtas/design_space.h"
#include "obs/profile.h"

namespace bridge::dtas {

/// One alternative implementation: metrics plus the hierarchical netlist.
struct AlternativeDesign {
  Metric metric;
  std::shared_ptr<netlist::Design> design;  // top() is the implementation
  std::string description;                  // top-level rule/cell trace
};

/// Per-Synthesizer cache of materialized implementation subtrees — the
/// TemplateCache pattern one layer down. The alternatives of one front
/// share almost all of their subtrees (the paper's hierarchical netlists
/// trace a shared decomposition), so each distinct (SpecNode, alternative)
/// pair is materialized exactly once as an immutable shared module and
/// referenced by every AlternativeDesign that contains it
/// (netlist::Design::reference_module keeps it alive per design).
///
/// The cache also owns two session-wide tables both extraction paths use:
///  - the module name table: names are unique across the whole session
///    (two distinct nodes whose sanitized spec keys collide get "_u<k>"
///    uniquifiers), so a shared module can appear in any design, and the
///    cache-off reference path names every module identically;
///  - the memoized implementation traces behind Describer.
///
/// Not thread-safe: one synthesize call at a time, like the Synthesizer
/// that owns it.
class ExtractionCache {
 public:
  struct Stats {
    long hits = 0;    // find() calls served a shared module
    long misses = 0;  // modules materialized (and published)
  };

  /// Session-unique, VHDL-legal module name for (node, alt). Memoized;
  /// first-request order fixes uniquifier assignment, and the cache-on
  /// and cache-off paths request names in the same order.
  const std::string& name_for(const SpecNode* node, int alt_index);

  /// Uniquify `base` against every name this session handed out: the
  /// first request returns `base` itself, collisions get "_u<k>"
  /// appended. Exposed for name_for and its regression tests.
  std::string unique_name(const std::string& base);

  /// Shared module for (node, alt); nullptr when not yet materialized.
  std::shared_ptr<const netlist::Module> find(const SpecNode* node,
                                              int alt_index);

  /// Publish a materialized module; returns the stored pointer.
  const std::shared_ptr<const netlist::Module>& insert(
      const SpecNode* node, int alt_index,
      std::shared_ptr<const netlist::Module> module);

  /// Memoized (node, alternative, depth) implementation traces, shared by
  /// every Describer of the session (see synthesizer.cpp).
  using DescribeKey = std::tuple<const SpecNode*, int, int>;
  std::map<DescribeKey, std::string>& describe_memo() {
    return describe_memo_;
  }

  const Stats& stats() const { return stats_; }
  /// Distinct modules materialized so far.
  std::size_t size() const { return modules_.size(); }

 private:
  using Key = std::pair<const SpecNode*, int>;
  std::map<Key, std::shared_ptr<const netlist::Module>> modules_;
  std::map<Key, std::string> names_;
  std::map<std::string, int> name_uses_;  // base -> names handed out
  std::map<DescribeKey, std::string> describe_memo_;
  Stats stats_;
};

/// Assemble the rule base DTAS uses for a given data book: the standard
/// generic rules plus the library-specific rules — the paper's nine
/// hand-written rules for the LSI-style book, LOLA-induced rules for any
/// other library (built-in TTL, parsed data-book text, Liberty imports).
RuleBase default_rules_for(const cells::CellLibrary& library);

class Synthesizer {
 public:
  /// Takes ownership of the rule base.
  Synthesizer(RuleBase rules, const cells::CellLibrary& library,
              SpaceOptions options = {});

  /// Convenience: default_rules_for(library).
  Synthesizer(const cells::CellLibrary& library, SpaceOptions options = {});

  /// Synthesize one component specification. Returns the filtered set of
  /// alternative designs, sorted by ascending area. Empty when the library
  /// cannot realize the specification.
  std::vector<AlternativeDesign> synthesize(const genus::ComponentSpec& spec);

  /// Synthesize a netlist of GENUS component instances (the output of
  /// high-level synthesis). The uniform-implementation constraint applies
  /// across the netlist: instances with the same specification share one
  /// implementation choice.
  std::vector<AlternativeDesign> synthesize_netlist(
      const netlist::Module& input);

  DesignSpace& space() { return space_; }
  const DesignSpace& space() const { return space_; }

  /// The session-wide extraction cache (shared modules, module names,
  /// memoized traces). Persists across synthesize calls, so a repeated
  /// synthesis over the same space extracts on a warm cache.
  ExtractionCache& extraction_cache() { return extract_cache_; }
  const ExtractionCache& extraction_cache() const { return extract_cache_; }

  /// Structured breakdown of the most recent synthesize /
  /// synthesize_netlist call: wall time per phase (expand / evaluate /
  /// extract) plus this-call deltas of the space and cache counters.
  /// Always populated — profiling reads clocks only at phase granularity,
  /// so it is not gated. Overwritten by the next call.
  const obs::Profile& last_profile() const { return profile_; }

 private:
  RuleBase rules_;
  DesignSpace space_;
  ExtractionCache extract_cache_;
  obs::Profile profile_;
};

/// Map a cell's ports onto the ports of the specification it implements.
/// Unmatched cell inputs receive data-book tie-offs (carry-in 0, enable 1,
/// asyncs 0, MODE 0/1 for adder/subtractor promotion); unmatched outputs
/// are left open. Requires genus::spec_implements(cell_spec, need).
struct PortBinding {
  enum class Kind { kPort, kConst, kOpen };
  Kind kind = Kind::kOpen;
  genus::PortDir dir = genus::PortDir::kIn;  // direction of the cell port
  base::Symbol need_port;   // kPort
  std::uint64_t value = 0;  // kConst
};
std::vector<std::pair<base::Symbol, PortBinding>> cell_binding(
    const genus::ComponentSpec& cell_spec, const genus::ComponentSpec& need);

}  // namespace bridge::dtas
