// Arithmetic decomposition rules: adders, adder/subtractors, subtractors,
// carry look-ahead structures, carry select.
//
// These instantiate the abstract design principles the paper's DTAS Design
// Language expresses: ripple composition, look-ahead carry networks,
// duplicated-hardware selection, and gate-level realization of the 1-bit
// base cases (which is what gives even a 16-bit adder its "several hundred
// thousand to several million" raw alternatives, §5).
#include <memory>

#include "dtas/rule.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::Style;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

/// Split `width` into ripple groups of at most `k` bits, LSB first.
std::vector<int> partition_width(int width, int k) {
  std::vector<int> groups;
  int remaining = width;
  while (remaining > 0) {
    int g = std::min(remaining, k);
    groups.push_back(g);
    remaining -= g;
  }
  return groups;
}

bool is_plain_adder(const ComponentSpec& spec) {
  return spec.kind == Kind::kAdder &&
         spec.rep == genus::Representation::kBinary &&
         spec.ops == genus::OpSet{Op::kAdd};
}

bool style_allows(const ComponentSpec& spec, Style s) {
  return spec.style == Style::kAny || spec.style == s;
}

/// Ripple-carry composition from `k`-bit adder groups.
Module ripple_adder_template(const ComponentSpec& spec, int k) {
  TemplateBuilder t(spec, "ripple" + std::to_string(k));
  const auto groups = partition_width(spec.width, k);
  NetIndex carry = netlist::kNoNet;
  int offset = 0;
  for (size_t g = 0; g < groups.size(); ++g) {
    ComponentSpec child = genus::make_adder_spec(groups[g], true, true);
    Instance& add = t.add("add", child);
    t.connect(add, "A", t.port("A"), offset);
    t.connect(add, "B", t.port("B"), offset);
    t.connect(add, "S", t.port("S"), offset);
    if (g == 0) {
      if (spec.carry_in) {
        t.connect(add, "CI", t.port("CI"));
      } else {
        t.connect_const(add, "CI", 0);
      }
    } else {
      t.connect(add, "CI", carry);
    }
    if (g + 1 == groups.size()) {
      if (spec.carry_out) t.connect(add, "CO", t.port("CO"));
    } else {
      carry = t.fresh("c", 1);
      t.connect(add, "CO", carry);
    }
    offset += groups[g];
  }
  return std::move(t).take();
}

class RippleAdderRule final : public Rule {
 public:
  RippleAdderRule(int k, bool library_specific)
      : Rule("adder-ripple-by-" + std::to_string(k), "ripple-composition",
             library_specific),
        k_(k) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return is_plain_adder(spec) && spec.width > k_ &&
           style_allows(spec, Style::kRipple);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    std::vector<Module> out;
    out.push_back(ripple_adder_template(spec, k_));
    return out;
  }

 private:
  int k_;
};

/// Ripple composition of internally look-ahead ("fast") adder groups: the
/// child groups demand Style::kCarryLookahead cells (e.g. ADD4F).
class FastAdderRippleRule final : public Rule {
 public:
  FastAdderRippleRule(int k, bool library_specific)
      : Rule("adder-fast-group-ripple-" + std::to_string(k),
             "ripple-composition", library_specific),
        k_(k) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (!is_plain_adder(spec) || spec.width <= k_ ||
        !style_allows(spec, Style::kCarryLookahead)) {
      return false;
    }
    ComponentSpec probe = genus::make_adder_spec(k_, true, true);
    probe.style = Style::kCarryLookahead;
    return !ctx.library.matches(probe).empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "fastripple" + std::to_string(k_));
    const auto groups = partition_width(spec.width, k_);
    NetIndex carry = netlist::kNoNet;
    int offset = 0;
    for (size_t g = 0; g < groups.size(); ++g) {
      ComponentSpec child = genus::make_adder_spec(groups[g], true, true);
      if (groups[g] == k_) child.style = Style::kCarryLookahead;
      Instance& add = t.add("fadd", child);
      t.connect(add, "A", t.port("A"), offset);
      t.connect(add, "B", t.port("B"), offset);
      t.connect(add, "S", t.port("S"), offset);
      if (g == 0) {
        if (spec.carry_in) {
          t.connect(add, "CI", t.port("CI"));
        } else {
          t.connect_const(add, "CI", 0);
        }
      } else {
        t.connect(add, "CI", carry);
      }
      if (g + 1 == groups.size()) {
        if (spec.carry_out) t.connect(add, "CO", t.port("CO"));
      } else {
        carry = t.fresh("c", 1);
        t.connect(add, "CO", carry);
      }
      offset += groups[g];
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int k_;
};

/// Shared scaffolding for the CLA rules: per-bit propagate/generate XOR and
/// AND arrays plus the sum XOR. Returns the nets (p, g, carry-into-bit).
struct PgNets {
  NetIndex p;        // propagate, width w
  NetIndex g;        // generate, width w
  NetIndex cin_bit;  // carry into each bit, width w
};

PgNets build_pg_and_sum(TemplateBuilder& t, const ComponentSpec& spec) {
  const int w = spec.width;
  PgNets nets;
  nets.p = t.fresh("p", w);
  nets.g = t.fresh("g", w);
  nets.cin_bit = t.fresh("cb", w);

  Instance& px = t.add("pgen", genus::make_gate_spec(Op::kXor, w));
  t.connect(px, "I0", t.port("A"));
  t.connect(px, "I1", t.port("B"));
  t.connect(px, "OUT", nets.p);

  Instance& gx = t.add("ggen", genus::make_gate_spec(Op::kAnd, w));
  t.connect(gx, "I0", t.port("A"));
  t.connect(gx, "I1", t.port("B"));
  t.connect(gx, "OUT", nets.g);

  Instance& sx = t.add("sum", genus::make_gate_spec(Op::kXor, w));
  t.connect(sx, "I0", nets.p);
  t.connect(sx, "I1", nets.cin_bit);
  t.connect(sx, "OUT", t.port("S"));

  // Carry into bit 0 is the external carry-in (or ground).
  if (spec.carry_in) {
    t.buf_slice(t.port("CI"), 0, nets.cin_bit, 0, 1);
  } else {
    t.const_slice(nets.cin_bit, 0, 1);
  }
  return nets;
}

/// Single-level look-ahead: CLA generators chained group to group.
class ClaAdderRule final : public Rule {
 public:
  explicit ClaAdderRule(bool library_specific)
      : Rule("adder-cla-flat", "lookahead-carry", library_specific) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (!is_plain_adder(spec) || spec.width < 8 || spec.width % 4 != 0 ||
        !style_allows(spec, Style::kCarryLookahead)) {
      return false;
    }
    ComponentSpec cla;
    cla.kind = Kind::kCarryLookahead;
    cla.width = 1;
    cla.size = 4;
    return !ctx.library.matches(cla).empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "claflat");
    const int w = spec.width;
    const int ngroups = w / 4;
    PgNets nets = build_pg_and_sum(t, spec);

    ComponentSpec cla;
    cla.kind = Kind::kCarryLookahead;
    cla.width = 1;
    cla.size = 4;

    NetIndex prev_group = netlist::kNoNet;  // net holding C[] of prior group
    for (int g = 0; g < ngroups; ++g) {
      Instance& u = t.add("cla", cla);
      t.connect(u, "P", nets.p, 4 * g);
      t.connect(u, "G", nets.g, 4 * g);
      if (g == 0) {
        // Group 0 sees the external carry-in (bit 0 of cin_bit).
        t.connect(u, "CI", nets.cin_bit, 0);
      } else {
        t.connect(u, "CI", prev_group, 3);
      }
      NetIndex c = t.fresh("cg", 4);
      t.connect(u, "C", c);
      // Carries into bits 4g+1..4g+3 come from C[0..2].
      t.buf_slice(c, 0, nets.cin_bit, 4 * g + 1, 3);
      if (g + 1 < ngroups) {
        // Carry into bit 4(g+1) is this group's C[3].
        t.buf_slice(c, 3, nets.cin_bit, 4 * (g + 1), 1);
      } else if (spec.carry_out) {
        t.buf_slice(c, 3, t.port("CO"), 0, 1);
      }
      prev_group = c;
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Two-level look-ahead tree (74182 style): level-1 CLAs produce group
/// propagate/generate, level-2 CLAs compute the group carries.
class ClaTreeRule final : public Rule {
 public:
  explicit ClaTreeRule(bool library_specific)
      : Rule("adder-cla-tree", "lookahead-carry", library_specific) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (!is_plain_adder(spec) || spec.width < 16 || spec.width % 16 != 0 ||
        !style_allows(spec, Style::kCarryLookahead)) {
      return false;
    }
    ComponentSpec cla;
    cla.kind = Kind::kCarryLookahead;
    cla.width = 1;
    cla.size = 4;
    return !ctx.library.matches(cla).empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "clatree");
    const int w = spec.width;
    const int ngroups = w / 4;
    const int nsuper = ngroups / 4;
    PgNets nets = build_pg_and_sum(t, spec);

    ComponentSpec cla;
    cla.kind = Kind::kCarryLookahead;
    cla.width = 1;
    cla.size = 4;

    NetIndex gp_vec = t.fresh("gp", ngroups);
    NetIndex gg_vec = t.fresh("gg", ngroups);
    NetIndex group_ci = t.fresh("gci", ngroups);  // carry into each group

    // Level 1: one CLA per 4-bit group; CI comes from the level-2 network.
    for (int g = 0; g < ngroups; ++g) {
      Instance& u = t.add("cla1", cla);
      t.connect(u, "P", nets.p, 4 * g);
      t.connect(u, "G", nets.g, 4 * g);
      t.connect(u, "CI", group_ci, g);
      NetIndex c = t.fresh("cg", 4);
      t.connect(u, "C", c);
      t.buf_slice(c, 0, nets.cin_bit, 4 * g + 1, 3);
      t.connect(u, "GP", gp_vec, g);
      t.connect(u, "GG", gg_vec, g);
      if (g + 1 == ngroups && spec.carry_out) {
        t.buf_slice(c, 3, t.port("CO"), 0, 1);
      }
    }
    // Carry into group 0 is the external carry-in; the sum XOR needs the
    // group-boundary carries mirrored into the per-bit carry net.
    t.buf_slice(nets.cin_bit, 0, group_ci, 0, 1);
    for (int g = 1; g < ngroups; ++g) {
      t.buf_slice(group_ci, g, nets.cin_bit, 4 * g, 1);
    }

    // Level 2: one CLA per super-group of 4 groups, chained.
    NetIndex prev_super = netlist::kNoNet;
    for (int s = 0; s < nsuper; ++s) {
      Instance& u = t.add("cla2", cla);
      t.connect(u, "P", gp_vec, 4 * s);
      t.connect(u, "G", gg_vec, 4 * s);
      if (s == 0) {
        t.connect(u, "CI", nets.cin_bit, 0);
      } else {
        t.connect(u, "CI", prev_super, 3);
      }
      NetIndex c = t.fresh("cs", 4);
      t.connect(u, "C", c);
      // Carries into groups 4s+1..4s+3.
      t.buf_slice(c, 0, group_ci, 4 * s + 1, 3);
      if (s + 1 < nsuper) {
        t.buf_slice(c, 3, group_ci, 4 * (s + 1), 1);
      }
      prev_super = c;
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Carry select: duplicate the upper groups for carry 0/1 and select.
class CarrySelectRule final : public Rule {
 public:
  CarrySelectRule(int k, bool library_specific)
      : Rule("adder-carry-select-" + std::to_string(k),
             "duplicated-hardware-selection", library_specific),
        k_(k) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return is_plain_adder(spec) && spec.width >= 2 * k_ &&
           spec.width % k_ == 0 &&
           style_allows(spec, Style::kCarrySelect);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "csel" + std::to_string(k_));
    const int w = spec.width;
    const int ngroups = w / k_;
    NetIndex carry = netlist::kNoNet;
    for (int g = 0; g < ngroups; ++g) {
      const int offset = g * k_;
      ComponentSpec child = genus::make_adder_spec(k_, true, true);
      if (g == 0) {
        Instance& add = t.add("a0", child);
        t.connect(add, "A", t.port("A"), offset);
        t.connect(add, "B", t.port("B"), offset);
        t.connect(add, "S", t.port("S"), offset);
        if (spec.carry_in) {
          t.connect(add, "CI", t.port("CI"));
        } else {
          t.connect_const(add, "CI", 0);
        }
        carry = t.fresh("c", 1);
        t.connect(add, "CO", carry);
        continue;
      }
      // Speculative pair: one assumes carry 0, one assumes carry 1.
      Instance& add0 = t.add("az", child);
      Instance& add1 = t.add("ao", child);
      NetIndex s0 = t.fresh("s0", k_);
      NetIndex s1 = t.fresh("s1", k_);
      NetIndex c0 = t.fresh("c0", 1);
      NetIndex c1 = t.fresh("c1", 1);
      for (auto [inst, s, c, ci] :
           {std::tuple<Instance*, NetIndex, NetIndex, int>{&add0, s0, c0, 0},
            std::tuple<Instance*, NetIndex, NetIndex, int>{&add1, s1, c1,
                                                           1}}) {
        t.connect(*inst, "A", t.port("A"), offset);
        t.connect(*inst, "B", t.port("B"), offset);
        t.connect(*inst, "S", s);
        t.connect_const(*inst, "CI", ci);
        t.connect(*inst, "CO", c);
      }
      // Select sums and group carry by the incoming carry.
      Instance& smux = t.add("smux", genus::make_mux_spec(k_, 2));
      t.connect(smux, "I0", s0);
      t.connect(smux, "I1", s1);
      t.connect(smux, "SEL", carry);
      t.connect(smux, "OUT", t.port("S"), offset);
      const bool last = g + 1 == ngroups;
      if (!last || spec.carry_out) {
        Instance& cmux = t.add("cmux", genus::make_mux_spec(1, 2));
        t.connect(cmux, "I0", c0);
        t.connect(cmux, "I1", c1);
        t.connect(cmux, "SEL", carry);
        if (last) {
          t.connect(cmux, "OUT", t.port("CO"));
        } else {
          NetIndex next = t.fresh("c", 1);
          t.connect(cmux, "OUT", next);
          carry = next;
        }
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int k_;
};

/// 1-bit full adder realized with XOR/AND/OR gates.
class AdderFromGatesRule final : public Rule {
 public:
  explicit AdderFromGatesRule(bool library_specific)
      : Rule("adder-1bit-gates", "gate-level-realization", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return is_plain_adder(spec) && spec.width == 1;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "fa_gates");
    NetIndex axb = t.gate2(Op::kXor, t.port("A"), 0, t.port("B"), 0);
    if (spec.carry_in) {
      Instance& sx = t.add("s", genus::make_gate_spec(Op::kXor, 1, 2));
      t.connect(sx, "I0", axb);
      t.connect(sx, "I1", t.port("CI"));
      t.connect(sx, "OUT", t.port("S"));
      if (spec.carry_out) {
        NetIndex ab = t.gate2(Op::kAnd, t.port("A"), 0, t.port("B"), 0);
        NetIndex cp = t.gate2(Op::kAnd, axb, 0, t.port("CI"), 0);
        Instance& co = t.add("co", genus::make_gate_spec(Op::kOr, 1, 2));
        t.connect(co, "I0", ab);
        t.connect(co, "I1", cp);
        t.connect(co, "OUT", t.port("CO"));
      }
    } else {
      t.buf_slice(axb, 0, t.port("S"), 0, 1);
      if (spec.carry_out) {
        Instance& co = t.add("co", genus::make_gate_spec(Op::kAnd, 1, 2));
        t.connect(co, "I0", t.port("A"));
        t.connect(co, "I1", t.port("B"));
        t.connect(co, "OUT", t.port("CO"));
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// 1-bit full adder realized with nine 2-input NAND gates (the classic
/// all-NAND construction) — a second gate-level base case, which widens
/// the raw design space the way §5 describes.
class AdderFromNandRule final : public Rule {
 public:
  explicit AdderFromNandRule(bool library_specific)
      : Rule("adder-1bit-nand", "gate-level-realization", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return is_plain_adder(spec) && spec.width == 1 && spec.carry_in &&
           spec.carry_out;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "fa_nand");
    auto nand = [&t](NetIndex a, NetIndex b) {
      return t.gate2(Op::kNand, a, 0, b, 0);
    };
    NetIndex a = t.port("A");
    NetIndex b = t.port("B");
    NetIndex ci = t.port("CI");
    // Half adder 1: x = a XOR b via 4 NANDs.
    NetIndex n1 = nand(a, b);
    NetIndex n2 = nand(a, n1);
    NetIndex n3 = nand(b, n1);
    NetIndex x = nand(n2, n3);
    // Half adder 2: s = x XOR ci via 4 NANDs.
    NetIndex n4 = nand(x, ci);
    NetIndex n5 = nand(x, n4);
    NetIndex n6 = nand(ci, n4);
    Instance& sg = t.add("s", genus::make_gate_spec(Op::kNand, 1, 2));
    t.connect(sg, "I0", n5);
    t.connect(sg, "I1", n6);
    t.connect(sg, "OUT", t.port("S"));
    // Carry: co = NAND(n1, n4).
    Instance& cg = t.add("co", genus::make_gate_spec(Op::kNand, 1, 2));
    t.connect(cg, "I0", n1);
    t.connect(cg, "I1", n4);
    t.connect(cg, "OUT", t.port("CO"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// AddSub from a plain adder plus a B-inverting XOR array.
class AddSubFromAdderRule final : public Rule {
 public:
  explicit AddSubFromAdderRule(bool library_specific)
      : Rule("addsub-from-adder", "operand-conditioning", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kAddSub &&
           spec.rep == genus::Representation::kBinary;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "addsub_xor");
    const int w = spec.width;
    NetIndex bx = t.fresh("bx", w);
    Instance& xg = t.add("binv", genus::make_gate_spec(Op::kXor, w));
    t.connect(xg, "I0", t.port("B"));
    t.connect_replicated(xg, "I1", t.port("MODE"));
    t.connect(xg, "OUT", bx);

    ComponentSpec child =
        genus::make_adder_spec(w, true, spec.carry_out);
    Instance& add = t.add("core", child);
    t.connect(add, "A", t.port("A"));
    t.connect(add, "B", bx);
    if (spec.carry_in) {
      t.connect(add, "CI", t.port("CI"));
    } else {
      t.connect_const(add, "CI", 0);
    }
    t.connect(add, "S", t.port("S"));
    if (spec.carry_out) t.connect(add, "CO", t.port("CO"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Ripple composition of k-bit adder/subtractor cells (MODE broadcast).
class AddSubRippleRule final : public Rule {
 public:
  AddSubRippleRule(int k, bool library_specific)
      : Rule("addsub-ripple-by-" + std::to_string(k), "ripple-composition",
             library_specific),
        k_(k) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kAddSub && spec.width > k_ &&
           spec.width % k_ == 0 &&
           spec.rep == genus::Representation::kBinary;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "adsuripple" + std::to_string(k_));
    const int ngroups = spec.width / k_;
    NetIndex carry = netlist::kNoNet;
    for (int g = 0; g < ngroups; ++g) {
      ComponentSpec child = genus::make_addsub_spec(k_);
      Instance& u = t.add("as", child);
      const int offset = g * k_;
      t.connect(u, "A", t.port("A"), offset);
      t.connect(u, "B", t.port("B"), offset);
      t.connect(u, "MODE", t.port("MODE"));
      t.connect(u, "S", t.port("S"), offset);
      if (g == 0) {
        if (spec.carry_in) {
          t.connect(u, "CI", t.port("CI"));
        } else {
          t.connect_const(u, "CI", 0);
        }
      } else {
        t.connect(u, "CI", carry);
      }
      if (g + 1 == ngroups) {
        if (spec.carry_out) t.connect(u, "CO", t.port("CO"));
      } else {
        carry = t.fresh("c", 1);
        t.connect(u, "CO", carry);
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int k_;
};

/// Subtractor realized with an adder/subtractor datapath in subtract mode.
class SubtractorFromAddSubRule final : public Rule {
 public:
  explicit SubtractorFromAddSubRule(bool library_specific)
      : Rule("subtractor-from-addsub", "operand-conditioning",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kSubtractor &&
           spec.rep == genus::Representation::kBinary;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "sub_addsub");
    ComponentSpec child = genus::make_addsub_spec(spec.width);
    child.carry_out = spec.carry_out;
    Instance& u = t.add("as", child);
    t.connect(u, "A", t.port("A"));
    t.connect(u, "B", t.port("B"));
    t.connect_const(u, "MODE", 1);
    t.connect(u, "S", t.port("S"));
    // Borrow-in/out have inverted sense relative to the raw carry chain.
    if (spec.carry_in) {
      NetIndex nci = t.inv(t.port("CI"), 0);
      t.connect(u, "CI", nci);
    } else {
      t.connect_const(u, "CI", 1);
    }
    if (spec.carry_out) {
      NetIndex raw = t.fresh("rc", 1);
      t.connect(u, "CO", raw);
      Instance& ng = t.add("nb", genus::make_gate_spec(Op::kLnot, 1));
      t.connect(ng, "I0", raw);
      t.connect(ng, "OUT", t.port("CO"));
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

}  // namespace

std::unique_ptr<Rule> make_ripple_adder_rule(int group_width,
                                             bool library_specific) {
  return std::make_unique<RippleAdderRule>(group_width, library_specific);
}

std::unique_ptr<Rule> make_fast_adder_ripple_rule(int group_width,
                                                  bool library_specific) {
  return std::make_unique<FastAdderRippleRule>(group_width, library_specific);
}

std::unique_ptr<Rule> make_addsub_ripple_rule(int group_width,
                                              bool library_specific) {
  return std::make_unique<AddSubRippleRule>(group_width, library_specific);
}

void register_arith_rules(RuleBase& base) {
  base.add(make_ripple_adder_rule(1, false));
  base.add(std::make_unique<ClaAdderRule>(false));
  base.add(std::make_unique<ClaTreeRule>(false));
  base.add(std::make_unique<CarrySelectRule>(8, false));
  base.add(std::make_unique<AdderFromGatesRule>(false));
  base.add(std::make_unique<AdderFromNandRule>(false));
  base.add(std::make_unique<AddSubFromAdderRule>(false));
  base.add(std::make_unique<SubtractorFromAddSubRule>(false));
}

}  // namespace bridge::dtas
