// Rule-base assembly.
//
// register_standard_rules() installs the technology-independent rule set
// (the analog of the paper's "86 rules written in the DTAS Design
// Language"); register_lsi_rules() installs the nine library-specific
// rules that "fully utilize the subset of cells from LSI Logic" (§7):
// the data-book granularities for ripple composition, bit slicing, select
// trees, and register packing.
#include "dtas/rule.h"

namespace bridge::dtas {

void register_standard_rules(RuleBase& base) {
  register_arith_rules(base);
  register_gate_rules(base);
  register_mux_rules(base);
  register_codec_rules(base);
  register_compare_shift_rules(base);
  register_seq_rules(base);
  register_alu_rules(base);
  // Availability-gated compositions: use data-book decoders/comparators
  // whenever the target library offers them (the rules probe the library).
  base.add(make_decoder_tree_rule(2, false));
  base.add(make_decoder_tree_rule(3, false));
  base.add(make_comparator_cascade_rule(4, false));
}

void register_lsi_rules(RuleBase& base) {
  // The nine LSI-specific rules (paper §7).
  base.add(make_ripple_adder_rule(2, true));        // 1. ADD2 ripple groups
  base.add(make_ripple_adder_rule(4, true));        // 2. ADD4 ripple groups
  base.add(make_fast_adder_ripple_rule(4, true));   // 3. ADD4F fast groups
  base.add(make_addsub_ripple_rule(2, true));       // 4. ADSU2 ripple groups
  base.add(make_mux_bitslice_rule(4, true));        // 5. MUX21X4 nibbles
  base.add(make_mux_tree_rule(4, true));            // 6. MUX41 select trees
  base.add(make_mux_tree_rule(8, true));            // 7. MUX81 select trees
  base.add(make_register_pack_rule(4, true));       // 8. REG4 packing
  base.add(make_register_pack_rule(8, true));       // 9. REG8 packing
}

}  // namespace bridge::dtas
