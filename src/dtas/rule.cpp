#include "dtas/rule.h"

#include <algorithm>
#include <atomic>

#include "base/diag.h"
#include "base/fingerprint.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Op;
using netlist::Instance;
using netlist::NetIndex;

std::uint64_t LambdaRule::next_unique_fingerprint() {
  // Process-unique, mixed so the values cannot collide with the small
  // explicit fingerprints authors are likely to choose (0 is reserved for
  // the pure-rule default and never returned here).
  static std::atomic<std::uint64_t> next{1};
  std::uint64_t fp = 0;
  while (fp == 0) fp = base::fp_mix(0x6c616d62646172ULL ^ next.fetch_add(1));
  return fp;
}

void RuleBase::add(std::unique_ptr<Rule> rule) {
  BRIDGE_CHECK(rule != nullptr, "null rule");
  BRIDGE_CHECK(by_name_.count(rule->name()) == 0,
               "duplicate rule '" << rule->name() << "'");
  by_name_.emplace(rule->name(), rule.get());
  rules_.push_back(std::move(rule));
}

int RuleBase::generic_count() const {
  int n = 0;
  for (const auto& r : rules_) {
    if (!r->library_specific()) ++n;
  }
  return n;
}

int RuleBase::library_specific_count() const {
  return total_count() - generic_count();
}

const Rule* RuleBase::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

TemplateBuilder::TemplateBuilder(const ComponentSpec& spec,
                                 const std::string& label)
    : mod_(label) {
  for (const genus::PortSpec& p : genus::spec_ports(spec)) {
    mod_.add_port(p.name, p.dir, p.width);
  }
}

NetIndex TemplateBuilder::port(base::Symbol name) const {
  NetIndex idx = mod_.find_net(name);
  BRIDGE_CHECK(idx != netlist::kNoNet,
               "template " << mod_.name() << " has no port net '" << name
                           << "'");
  return idx;
}

NetIndex TemplateBuilder::fresh(const std::string& base, int width) {
  return mod_.add_net(base + "_" + std::to_string(counter_++), width);
}

Instance& TemplateBuilder::add(const std::string& name,
                               const ComponentSpec& child) {
  return mod_.add_spec_instance(name + "_" + std::to_string(counter_++),
                                child);
}

NetIndex TemplateBuilder::gate2(Op fn, NetIndex a, int a_lo, NetIndex b,
                                int b_lo) {
  Instance& g = add("g", genus::make_gate_spec(fn, 1, 2));
  connect(g, "I0", a, a_lo);
  connect(g, "I1", b, b_lo);
  NetIndex out = fresh("t", 1);
  connect(g, "OUT", out);
  return out;
}

NetIndex TemplateBuilder::inv(NetIndex a, int a_lo) {
  Instance& g = add("n", genus::make_gate_spec(Op::kLnot, 1));
  connect(g, "I0", a, a_lo);
  NetIndex out = fresh("t", 1);
  connect(g, "OUT", out);
  return out;
}

NetIndex TemplateBuilder::gate_many(
    Op fn, const std::vector<std::pair<NetIndex, int>>& picks) {
  BRIDGE_CHECK(!picks.empty(),
               "gate_many(" << genus::op_name(fn) << ") needs at least one "
                            << "pick");
  if (picks.size() == 1) {
    // The single code path for k == 1: only ops with a sound one-input
    // reading are accepted. AND/OR of one operand are that operand (a
    // buffer); LNOT is an inverter. NOR/NAND/XNOR/... of one operand are
    // NOT the operand, so quietly emitting a buffer would change the
    // logic — refuse loudly instead.
    if (fn == Op::kLnot) return inv(picks[0].first, picks[0].second);
    BRIDGE_CHECK(fn == Op::kAnd || fn == Op::kOr,
                 "gate_many(" << genus::op_name(fn) << ") with a single pick "
                              << "has no identity reading; use inv()/gate2()");
    Instance& g = add("b", genus::make_gate_spec(Op::kBuf, 1));
    connect(g, "I0", picks[0].first, picks[0].second);
    NetIndex out = fresh("t", 1);
    connect(g, "OUT", out);
    return out;
  }
  Instance& g = add("g", genus::make_gate_spec(
                             fn, 1, static_cast<int>(picks.size())));
  for (size_t i = 0; i < picks.size(); ++i) {
    connect(g, "I" + std::to_string(i), picks[i].first, picks[i].second);
  }
  NetIndex out = fresh("t", 1);
  connect(g, "OUT", out);
  return out;
}

void TemplateBuilder::buf_slice(NetIndex src, int src_lo, NetIndex dst,
                                int dst_lo, int width) {
  BRIDGE_CHECK(width >= 1, "buf_slice of empty range");
  Instance& g = add("w", genus::make_gate_spec(Op::kBuf, width));
  connect(g, "I0", src, src_lo);
  connect(g, "OUT", dst, dst_lo);
}

void TemplateBuilder::const_slice(NetIndex dst, int dst_lo, int width,
                                  bool value) {
  // A gate with constant inputs is the structural form of a GND/VDD tie.
  // A PortConn carries at most 64 constant bits (connect_const masks to
  // the port width and rejects wider ports), so wider fills — e.g. the
  // zero half of a >128-bit logarithmic shift stage — tie in chunks of 64.
  for (int off = 0; off < width; off += 64) {
    const int w = std::min(64, width - off);
    Instance& g = add("k", genus::make_gate_spec(Op::kBuf, w));
    connect_const(g, "I0", value ? ~0ULL : 0ULL);
    connect(g, "OUT", dst, dst_lo + off);
  }
}

}  // namespace bridge::dtas
