#include "dtas/rule.h"

#include "base/diag.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Op;
using netlist::Instance;
using netlist::NetIndex;

void RuleBase::add(std::unique_ptr<Rule> rule) {
  BRIDGE_CHECK(rule != nullptr, "null rule");
  BRIDGE_CHECK(find(rule->name()) == nullptr,
               "duplicate rule '" << rule->name() << "'");
  rules_.push_back(std::move(rule));
}

int RuleBase::generic_count() const {
  int n = 0;
  for (const auto& r : rules_) {
    if (!r->library_specific()) ++n;
  }
  return n;
}

int RuleBase::library_specific_count() const {
  return total_count() - generic_count();
}

const Rule* RuleBase::find(const std::string& name) const {
  for (const auto& r : rules_) {
    if (r->name() == name) return r.get();
  }
  return nullptr;
}

TemplateBuilder::TemplateBuilder(const ComponentSpec& spec,
                                 const std::string& label)
    : mod_(label) {
  for (const genus::PortSpec& p : genus::spec_ports(spec)) {
    mod_.add_port(p.name, p.dir, p.width);
  }
}

NetIndex TemplateBuilder::port(const std::string& name) const {
  NetIndex idx = mod_.find_net(name);
  BRIDGE_CHECK(idx != netlist::kNoNet,
               "template " << mod_.name() << " has no port net '" << name
                           << "'");
  return idx;
}

NetIndex TemplateBuilder::fresh(const std::string& base, int width) {
  return mod_.add_net(base + "_" + std::to_string(counter_++), width);
}

Instance& TemplateBuilder::add(const std::string& name,
                               const ComponentSpec& child) {
  return mod_.add_spec_instance(name + "_" + std::to_string(counter_++),
                                child);
}

NetIndex TemplateBuilder::gate2(Op fn, NetIndex a, int a_lo, NetIndex b,
                                int b_lo) {
  Instance& g = add("g", genus::make_gate_spec(fn, 1, 2));
  connect(g, "I0", a, a_lo);
  connect(g, "I1", b, b_lo);
  NetIndex out = fresh("t", 1);
  connect(g, "OUT", out);
  return out;
}

NetIndex TemplateBuilder::inv(NetIndex a, int a_lo) {
  Instance& g = add("n", genus::make_gate_spec(Op::kLnot, 1));
  connect(g, "I0", a, a_lo);
  NetIndex out = fresh("t", 1);
  connect(g, "OUT", out);
  return out;
}

NetIndex TemplateBuilder::gate_many(
    Op fn, const std::vector<std::pair<NetIndex, int>>& picks) {
  BRIDGE_CHECK(picks.size() >= 1, "gate_many needs at least one input");
  if (picks.size() == 1 && fn != Op::kLnot) {
    // Degenerate gate: a single-input AND/OR is a buffer.
    Instance& g = add("b", genus::make_gate_spec(Op::kBuf, 1));
    connect(g, "I0", picks[0].first, picks[0].second);
    NetIndex out = fresh("t", 1);
    connect(g, "OUT", out);
    return out;
  }
  Instance& g = add("g", genus::make_gate_spec(
                             fn, 1, static_cast<int>(picks.size())));
  for (size_t i = 0; i < picks.size(); ++i) {
    connect(g, "I" + std::to_string(i), picks[i].first, picks[i].second);
  }
  NetIndex out = fresh("t", 1);
  connect(g, "OUT", out);
  return out;
}

void TemplateBuilder::buf_slice(NetIndex src, int src_lo, NetIndex dst,
                                int dst_lo, int width) {
  BRIDGE_CHECK(width >= 1, "buf_slice of empty range");
  Instance& g = add("w", genus::make_gate_spec(Op::kBuf, width));
  connect(g, "I0", src, src_lo);
  connect(g, "OUT", dst, dst_lo);
}

void TemplateBuilder::const_slice(NetIndex dst, int dst_lo, int width,
                                  bool value) {
  // A gate with constant inputs is the structural form of a GND/VDD tie.
  Instance& g = add("k", genus::make_gate_spec(Op::kBuf, width));
  std::uint64_t v = value ? ~0ULL : 0ULL;
  connect_const(g, "I0", v);
  connect(g, "OUT", dst, dst_lo);
}

}  // namespace bridge::dtas
