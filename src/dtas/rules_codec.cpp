// Decoder and encoder decomposition rules: enable-tree composition from
// data-book decoders, gate-level minterm realization (binary and BCD),
// and priority encoders from a scan chain plus OR planes.
#include <memory>

#include "dtas/rule.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::Representation;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

/// Gate-level decoder: shared input inverters plus one minterm AND per
/// output (with the enable folded into the minterm when present).
class DecoderFromGatesRule final : public Rule {
 public:
  explicit DecoderFromGatesRule(bool library_specific)
      : Rule("decoder-minterm-gates", "gate-level-realization",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kDecoder && spec.width <= 4 &&
           spec.rep == Representation::kBinary;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "decgates");
    const int w = spec.width;
    std::vector<NetIndex> nbit(w);
    for (int b = 0; b < w; ++b) nbit[b] = t.inv(t.port("IN"), b);
    for (int o = 0; o < spec.size; ++o) {
      std::vector<std::pair<NetIndex, int>> picks;
      for (int b = 0; b < w; ++b) {
        if ((o >> b) & 1) {
          picks.emplace_back(t.port("IN"), b);
        } else {
          picks.emplace_back(nbit[b], 0);
        }
      }
      if (spec.enable) picks.emplace_back(t.port("EN"), 0);
      NetIndex m = t.gate_many(Op::kAnd, picks);
      t.buf_slice(m, 0, t.port("OUT"), o, 1);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Decoder tree: a root decoder on the high input bits enables a row of
/// leaf decoders on the low bits (the classic 74138 expansion scheme).
class DecoderTreeRule final : public Rule {
 public:
  DecoderTreeRule(int leaf_width, bool library_specific)
      : Rule("decoder-tree-leaf-" + std::to_string(leaf_width),
             "enable-tree-composition", library_specific),
        leaf_(leaf_width) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (spec.kind != Kind::kDecoder || spec.rep != Representation::kBinary ||
        spec.width <= leaf_) {
      return false;
    }
    ComponentSpec probe = genus::make_decoder_spec(leaf_);
    probe.enable = true;
    return !ctx.library.matches(probe).empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "dectree" + std::to_string(leaf_));
    const int w = spec.width;
    const int high = w - leaf_;
    const int nleaves = 1 << high;
    const int leaf_outs = 1 << leaf_;

    ComponentSpec root_spec = genus::make_decoder_spec(high);
    root_spec.enable = spec.enable;
    Instance& root = t.add("root", root_spec);
    t.connect(root, "IN", t.port("IN"), leaf_);
    if (spec.enable) t.connect(root, "EN", t.port("EN"));
    NetIndex sel = t.fresh("row", nleaves);
    t.connect(root, "OUT", sel);

    ComponentSpec leaf_spec = genus::make_decoder_spec(leaf_);
    leaf_spec.enable = true;
    for (int g = 0; g < nleaves; ++g) {
      Instance& leaf = t.add("leaf", leaf_spec);
      t.connect(leaf, "IN", t.port("IN"), 0);
      t.connect(leaf, "EN", sel, g);
      t.connect(leaf, "OUT", t.port("OUT"), g * leaf_outs);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int leaf_;
};

/// BCD decoder (7442 style): invalid codes (10-15) drive no output.
class BcdDecoderRule final : public Rule {
 public:
  explicit BcdDecoderRule(bool library_specific)
      : Rule("decoder-bcd-minterms", "gate-level-realization",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kDecoder && spec.rep == Representation::kBcd &&
           spec.width == 4 && spec.size == 10;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "decbcd");
    std::vector<NetIndex> nbit(4);
    for (int b = 0; b < 4; ++b) nbit[b] = t.inv(t.port("IN"), b);
    for (int o = 0; o < 10; ++o) {
      std::vector<std::pair<NetIndex, int>> picks;
      for (int b = 0; b < 4; ++b) {
        if ((o >> b) & 1) {
          picks.emplace_back(t.port("IN"), b);
        } else {
          picks.emplace_back(nbit[b], 0);
        }
      }
      if (spec.enable) picks.emplace_back(t.port("EN"), 0);
      NetIndex m = t.gate_many(Op::kAnd, picks);
      t.buf_slice(m, 0, t.port("OUT"), o, 1);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Priority encoder: a higher-index scan chain masks lower inputs; the
/// output bits are OR planes over the surviving one-hot picks.
class PriorityEncoderRule final : public Rule {
 public:
  explicit PriorityEncoderRule(bool library_specific)
      : Rule("encoder-priority-scan", "gate-level-realization",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kEncoder && spec.size >= 2 && spec.size <= 32;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "encprio");
    const int n = spec.size;
    const int w = spec.width;
    // any_higher[i] = OR(IN[i+1..n-1]); built as a chain, MSB down.
    std::vector<NetIndex> any_higher(n, netlist::kNoNet);
    for (int i = n - 2; i >= 0; --i) {
      if (i == n - 2) {
        NetIndex o = t.fresh("ah", 1);
        t.buf_slice(t.port("IN"), n - 1, o, 0, 1);
        any_higher[i] = o;
      } else {
        any_higher[i] =
            t.gate2(Op::kOr, t.port("IN"), i + 1, any_higher[i + 1], 0);
      }
    }
    // pick[i] = IN[i] & ~any_higher[i] (only needed where i has set bits).
    std::vector<NetIndex> pick(n, netlist::kNoNet);
    for (int i = 1; i < n; ++i) {
      if (i == n - 1) {
        NetIndex o = t.fresh("pk", 1);
        t.buf_slice(t.port("IN"), n - 1, o, 0, 1);
        pick[i] = o;
      } else {
        NetIndex nh = t.inv(any_higher[i], 0);
        Instance& g = t.add("pk", genus::make_gate_spec(Op::kAnd, 1, 2));
        t.connect(g, "I0", t.port("IN"), i);
        t.connect(g, "I1", nh);
        NetIndex o = t.fresh("pk", 1);
        t.connect(g, "OUT", o);
        pick[i] = o;
      }
    }
    // OUT[j] = OR of picks whose index has bit j set.
    for (int j = 0; j < w; ++j) {
      std::vector<std::pair<NetIndex, int>> picks;
      for (int i = 1; i < n; ++i) {
        if ((i >> j) & 1) picks.emplace_back(pick[i], 0);
      }
      if (picks.empty()) {
        t.const_slice(t.port("OUT"), j, 1);
      } else if (picks.size() == 1) {
        t.buf_slice(picks[0].first, 0, t.port("OUT"), j, 1);
      } else {
        NetIndex o = t.gate_many(Op::kOr, picks);
        t.buf_slice(o, 0, t.port("OUT"), j, 1);
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

}  // namespace

std::unique_ptr<Rule> make_decoder_tree_rule(int leaf_width,
                                             bool library_specific) {
  return std::make_unique<DecoderTreeRule>(leaf_width, library_specific);
}

void register_codec_rules(RuleBase& base) {
  base.add(std::make_unique<DecoderFromGatesRule>(false));
  base.add(std::make_unique<BcdDecoderRule>(false));
  base.add(std::make_unique<PriorityEncoderRule>(false));
}

}  // namespace bridge::dtas
