#include "dtas/timing_plan.h"

#include <algorithm>

#include "base/diag.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using netlist::Instance;
using netlist::Module;
using netlist::PortConn;

namespace {

/// A writer of one net bit: the DAG node that drives it, plus its schedule
/// position (-1 for sequential launches, which the reference evaluator
/// writes before any combinational step runs).
struct BitWriter {
  int node = -1;
  int order = -1;
};

}  // namespace

TimingPlan TimingPlan::compile(
    const Module& tmpl, const EvalSchedule& topo,
    const std::vector<const ComponentSpec*>& child_specs) {
  TimingPlan plan;
  plan.compiled_ = true;
  plan.child_on_path_.assign(child_specs.size(), 0);

  // Global bit index per (net, bit): net_base[net] + bit.
  std::vector<int> net_base(tmpl.nets().size(), 0);
  int num_bits = 0;
  for (size_t n = 0; n < tmpl.nets().size(); ++n) {
    net_base[n] = num_bits;
    num_bits += tmpl.nets()[n].width;
  }

  // Per-instance connection views with resolved directions and widths,
  // computed once here — the whole point is that evaluation never touches
  // port names again.
  struct Conn {
    base::Symbol port;
    PortConn conn;
    int width;
  };
  const auto& insts = tmpl.instances();
  const int n = static_cast<int>(insts.size());
  std::vector<std::vector<Conn>> ins(n), outs(n);
  plan.inst_child_.resize(n);
  for (int i = 0; i < n; ++i) {
    const Instance& inst = insts[i];
    int child = -1;
    for (size_t c = 0; c < child_specs.size(); ++c) {
      if (*child_specs[c] == inst.spec) {
        child = static_cast<int>(c);
        break;
      }
    }
    if (child < 0) {
      throw Error("timing plan: instance spec not a distinct child: " +
                  inst.spec.key());
    }
    plan.inst_child_[i] = child;
    std::vector<genus::PortSpec> storage;
    const auto& ports = Module::instance_ports_ref(inst, storage);
    for (const auto& [port_name, conn] : inst.connections) {
      const genus::PortSpec& p = genus::find_port(ports, port_name);
      Conn c{port_name, conn, p.width};
      (p.dir == genus::PortDir::kIn ? ins[i] : outs[i]).push_back(c);
    }
  }

  // Writers per net bit. Node numbering: sequential launches first, then
  // combinational steps in schedule order.
  std::vector<std::vector<BitWriter>> writers(num_bits);
  std::vector<int> seq_insts;
  for (int i = 0; i < n; ++i) {
    if (genus::kind_is_sequential(insts[i].spec.kind)) seq_insts.push_back(i);
  }
  const int num_seq = static_cast<int>(seq_insts.size());
  for (int s = 0; s < num_seq; ++s) {
    const int i = seq_insts[s];
    for (const Conn& c : outs[i]) {
      if (c.conn.kind != PortConn::Kind::kNet) continue;
      for (int b = 0; b < c.width; ++b) {
        writers[net_base[c.conn.net] + c.conn.lo + b].push_back(
            BitWriter{s, -1});
      }
    }
  }
  for (size_t u = 0; u < topo.size(); ++u) {
    const EvalStep& step = topo[u];
    const int node = num_seq + static_cast<int>(u);
    for (const Conn& c : outs[step.instance]) {
      if (c.port != step.port || c.conn.kind != PortConn::Kind::kNet) {
        continue;
      }
      for (int b = 0; b < c.width; ++b) {
        writers[net_base[c.conn.net] + c.conn.lo + b].push_back(
            BitWriter{node, static_cast<int>(u)});
      }
    }
  }

  // Collect the predecessor nodes feeding a set of input connections:
  // every writer of every selected input bit that has already run by
  // schedule position `before` (INT_MAX collects everything, which is what
  // sequential setup checks see — they run after all steps). This is
  // exactly the set of values the reference evaluator's arrival-buffer
  // read would have observed, so collapsing the bits preserves bit-exact
  // results.
  std::vector<int> scratch;
  auto collect_preds = [&](const std::vector<const Conn*>& conns, int before,
                           int self_node) {
    scratch.clear();
    for (const Conn* c : conns) {
      const int span = c->conn.replicate ? 1 : c->width;
      for (int b = 0; b < span; ++b) {
        for (const BitWriter& w :
             writers[net_base[c->conn.net] + c->conn.lo + b]) {
          if (w.order < before && w.node != self_node) {
            scratch.push_back(w.node);
          }
        }
      }
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    const int begin = static_cast<int>(plan.preds_.size());
    plan.preds_.insert(plan.preds_.end(), scratch.begin(), scratch.end());
    return std::make_pair(begin, static_cast<int>(plan.preds_.size()));
  };

  constexpr int kAfterAllSteps = 1 << 30;
  std::vector<const Conn*> selected;

  for (size_t u = 0; u < topo.size(); ++u) {
    const EvalStep& step = topo[u];
    const Instance& inst = insts[step.instance];
    Step s;
    s.child = plan.inst_child_[step.instance];
    plan.child_on_path_[s.child] = 1;
    selected.clear();
    for (const Conn& c : ins[step.instance]) {
      if (c.conn.kind != PortConn::Kind::kNet) continue;
      if (!genus::output_depends_on(inst.spec, step.port, c.port)) continue;
      selected.push_back(&c);
    }
    const int node = num_seq + static_cast<int>(u);
    std::tie(s.pred_begin, s.pred_end) =
        collect_preds(selected, static_cast<int>(u), node);
    plan.steps_.push_back(s);
  }

  for (int si = 0; si < num_seq; ++si) {
    const int i = seq_insts[si];
    SeqStep s;
    s.child = plan.inst_child_[i];
    plan.child_on_path_[s.child] = 1;
    selected.clear();
    for (const Conn& c : ins[i]) {
      if (c.conn.kind == PortConn::Kind::kNet) selected.push_back(&c);
    }
    std::tie(s.setup_begin, s.setup_end) =
        collect_preds(selected, kAfterAllSteps, -1);
    plan.seq_.push_back(s);
  }
  return plan;
}

double TimingPlan::delay(const double* child_delay,
                         EvalScratch& scratch) const {
  BRIDGE_CHECK(compiled_, "delay() on an uncompiled timing plan");
  std::vector<double>& times = scratch.times;
  const size_t num_nodes = seq_.size() + steps_.size();
  if (times.size() < num_nodes) times.resize(num_nodes);
  double worst = 0.0;
  size_t node = 0;
  for (const SeqStep& s : seq_) {
    const double d = child_delay[s.child];
    times[node++] = d;
    if (d > worst) worst = d;
  }
  for (const Step& s : steps_) {
    double at = 0.0;
    for (int k = s.pred_begin; k < s.pred_end; ++k) {
      const double a = times[preds_[k]];
      if (a > at) at = a;
    }
    const double t = at + child_delay[s.child];
    times[node++] = t;
    if (t > worst) worst = t;
  }
  for (const SeqStep& s : seq_) {
    for (int k = s.setup_begin; k < s.setup_end; ++k) {
      const double a = times[preds_[k]];
      if (a > worst) worst = a;
    }
  }
  return worst;
}

}  // namespace bridge::dtas
