// Sequential and interface decomposition rules: register packing,
// enable-recirculation, synchronous and ripple-carry counters, register
// files, memories, and the interface/miscellaneous component family.
#include <memory>

#include "dtas/rule.h"

namespace bridge::dtas {

using genus::ComponentSpec;
using genus::Kind;
using genus::Op;
using genus::OpSet;
using genus::Style;
using netlist::Instance;
using netlist::Module;
using netlist::NetIndex;

namespace {

int clog2(int n) {
  int bits = 0;
  int cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits < 1 ? 1 : bits;
}

void connect_register_controls(TemplateBuilder& t, Instance& reg,
                               const ComponentSpec& spec) {
  t.connect(reg, "CLK", t.port("CLK"));
  if (spec.enable) t.connect(reg, "EN", t.port("EN"));
  if (spec.async_set) t.connect(reg, "ASET", t.port("ASET"));
  if (spec.async_reset) t.connect(reg, "ARST", t.port("ARST"));
}

/// Pack a wide register from k-bit register (or flip-flop) slices.
class RegisterPackRule final : public Rule {
 public:
  RegisterPackRule(int k, bool library_specific)
      : Rule("register-pack-" + std::to_string(k), "bit-slice",
             library_specific),
        k_(k) {}

  bool applies(const ComponentSpec& spec,
               const RuleContext& ctx) const override {
    if (spec.kind != Kind::kRegister || spec.width <= k_ ||
        spec.width % k_ != 0) {
      return false;
    }
    if (k_ == 1) return true;  // generic base case (flip-flop slices)
    ComponentSpec probe = spec;
    probe.width = k_;
    return !ctx.library.matches(probe).empty();
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "regpack" + std::to_string(k_));
    const int slices = spec.width / k_;
    for (int s = 0; s < slices; ++s) {
      ComponentSpec child = spec;
      child.width = k_;
      Instance& r = t.add("r", child);
      t.connect(r, "D", t.port("D"), s * k_);
      t.connect(r, "Q", t.port("Q"), s * k_);
      connect_register_controls(t, r, spec);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }

 private:
  int k_;
};

/// Enable by input recirculation: a plain register behind a 2:1 mux.
/// Used when the data book's flip-flops have no enable pin.
class RegisterEnableMuxRule final : public Rule {
 public:
  explicit RegisterEnableMuxRule(bool library_specific)
      : Rule("register-enable-recirculate", "control-conditioning",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kRegister && spec.enable;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "regen");
    const int w = spec.width;
    ComponentSpec child = spec;
    child.enable = false;
    Instance& r = t.add("core", child);
    Instance& m = t.add("recirc", genus::make_mux_spec(w, 2));
    t.connect(m, "I0", t.port("Q"));  // hold
    t.connect(m, "I1", t.port("D"));  // load
    t.connect(m, "SEL", t.port("EN"));
    NetIndex d = t.fresh("d", w);
    t.connect(m, "OUT", d);
    t.connect(r, "D", d);
    t.connect(r, "Q", t.port("Q"));
    t.connect(r, "CLK", t.port("CLK"));
    if (spec.async_set) t.connect(r, "ASET", t.port("ASET"));
    if (spec.async_reset) t.connect(r, "ARST", t.port("ARST"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

const OpSet kCounterOps{Op::kLoad, Op::kCountUp, Op::kCountDown};

/// Build the counter's "any operation requested" enable and the D input.
struct CounterCommon {
  NetIndex ren = netlist::kNoNet;   // register enable
  NetIndex mode = netlist::kNoNet;  // 1 = down (priority: up wins)
};

CounterCommon build_counter_enable(TemplateBuilder& t,
                                   const ComponentSpec& spec) {
  CounterCommon c;
  const bool has_load = spec.ops.contains(Op::kLoad);
  const bool has_up = spec.ops.contains(Op::kCountUp);
  const bool has_down = spec.ops.contains(Op::kCountDown);

  std::vector<std::pair<NetIndex, int>> any;
  if (has_load) any.emplace_back(t.port("CLOAD"), 0);
  if (has_up) any.emplace_back(t.port("CUP"), 0);
  if (has_down) any.emplace_back(t.port("CDOWN"), 0);
  NetIndex anyop = t.gate_many(Op::kOr, any);
  if (spec.enable) {
    c.ren = t.gate2(Op::kAnd, t.port("CEN"), 0, anyop, 0);
  } else {
    c.ren = anyop;
  }
  if (has_down && has_up) {
    NetIndex nup = t.inv(t.port("CUP"), 0);
    c.mode = t.gate2(Op::kAnd, t.port("CDOWN"), 0, nup, 0);
  } else if (has_down) {
    c.mode = t.fresh("md", 1);
    t.const_slice(c.mode, 0, 1, true);
  } else {
    c.mode = t.fresh("md", 1);
    t.const_slice(c.mode, 0, 1, false);
  }
  return c;
}

/// Synchronous counter: register plus an add/subtract-by-one datapath.
class CounterSyncRule final : public Rule {
 public:
  explicit CounterSyncRule(bool library_specific)
      : Rule("counter-sync-addsub", "state-plus-increment",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kCounter && !spec.ops.empty() &&
           kCounterOps.contains_all(spec.ops) &&
           spec.ops.intersects(OpSet{Op::kCountUp, Op::kCountDown}) &&
           (spec.style == Style::kAny || spec.style == Style::kSynchronous);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "ctrsync");
    const int w = spec.width;
    const bool has_load = spec.ops.contains(Op::kLoad);
    CounterCommon c = build_counter_enable(t, spec);

    ComponentSpec reg =
        genus::make_register_spec(w, /*enable=*/true, spec.async_reset);
    reg.async_set = spec.async_set;
    Instance& r = t.add("state", reg);
    t.connect(r, "Q", t.port("O0"));
    t.connect(r, "CLK", t.port("CLK"));
    t.connect(r, "EN", c.ren);
    if (spec.async_set) t.connect(r, "ASET", t.port("ASET"));
    if (spec.async_reset) t.connect(r, "ARST", t.port("ARESET"));

    // Count datapath: Q +/- 1. Raw add/sub: up = Q+1+0, down = Q+~1+1.
    ComponentSpec as = genus::make_addsub_spec(w);
    as.carry_out = false;
    Instance& a = t.add("count", as);
    t.connect(a, "A", t.port("O0"));
    t.connect_const(a, "B", 1);
    t.connect(a, "MODE", c.mode);
    t.connect(a, "CI", c.mode);  // subtract needs raw carry-in of 1
    NetIndex next = t.fresh("nx", w);
    t.connect(a, "S", next);

    if (has_load) {
      Instance& m = t.add("ldmux", genus::make_mux_spec(w, 2));
      t.connect(m, "I0", next);
      t.connect(m, "I1", t.port("I0"));
      t.connect(m, "SEL", t.port("CLOAD"));
      NetIndex d = t.fresh("d", w);
      t.connect(m, "OUT", d);
      t.connect(r, "D", d);
    } else {
      t.connect(r, "D", next);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Ripple-carry toggle counter (the paper's RIPPLE counter style, realized
/// synchronously): per-bit toggle flip-flops with an AND carry chain.
class CounterToggleRule final : public Rule {
 public:
  explicit CounterToggleRule(bool library_specific)
      : Rule("counter-ripple-toggle", "state-plus-increment",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kCounter && !spec.ops.empty() &&
           kCounterOps.contains_all(spec.ops) &&
           spec.ops.intersects(OpSet{Op::kCountUp, Op::kCountDown}) &&
           (spec.style == Style::kAny || spec.style == Style::kRipple);
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "ctrtoggle");
    const int w = spec.width;
    const bool has_load = spec.ops.contains(Op::kLoad);
    CounterCommon c = build_counter_enable(t, spec);

    ComponentSpec ff =
        genus::make_register_spec(1, /*enable=*/true, spec.async_reset);
    ff.async_set = spec.async_set;

    NetIndex carry = netlist::kNoNet;  // toggle-enable chain
    for (int b = 0; b < w; ++b) {
      // x_b = Q_b XOR mode (count direction view of the chain).
      NetIndex x = t.gate2(Op::kXor, t.port("O0"), b, c.mode, 0);
      NetIndex toggle_en =
          b == 0 ? netlist::kNoNet : carry;  // carry into this bit
      NetIndex tog;
      if (b == 0) {
        tog = t.fresh("c", 1);
        t.buf_slice(c.ren, 0, tog, 0, 1);
        // Bit 0 always toggles when counting; chain starts from count
        // request (load overrides via the mux below).
      } else {
        tog = toggle_en;
      }
      // next carry = tog & x_b.
      carry = t.gate2(Op::kAnd, tog, 0, x, 0);
      // toggled_b = Q_b XOR tog.
      NetIndex tv = t.gate2(Op::kXor, t.port("O0"), b, tog, 0);

      Instance& r = t.add("ff", ff);
      t.connect(r, "CLK", t.port("CLK"));
      t.connect(r, "EN", c.ren);
      if (spec.async_set) t.connect(r, "ASET", t.port("ASET"));
      if (spec.async_reset) t.connect(r, "ARST", t.port("ARESET"));
      t.connect(r, "Q", t.port("O0"), b);
      if (has_load) {
        Instance& m = t.add("ldm", genus::make_mux_spec(1, 2));
        t.connect(m, "I0", tv);
        t.connect(m, "I1", t.port("I0"), b);
        t.connect(m, "SEL", t.port("CLOAD"));
        NetIndex d = t.fresh("d", 1);
        t.connect(m, "OUT", d);
        t.connect(r, "D", d);
      } else {
        t.connect(r, "D", tv);
      }
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Register file from registers, a write decoder, and a read mux.
class RegisterFileRule final : public Rule {
 public:
  explicit RegisterFileRule(bool library_specific)
      : Rule("regfile-registers-decoder-mux", "storage-array-composition",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kRegisterFile && spec.size >= 2 &&
           (spec.size & (spec.size - 1)) == 0;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "regfile");
    const int w = spec.width;
    const int n = spec.size;
    const int abits = clog2(n);

    ComponentSpec dec = genus::make_decoder_spec(abits);
    dec.enable = true;
    Instance& d = t.add("wdec", dec);
    t.connect(d, "IN", t.port("WA"));
    t.connect(d, "EN", t.port("WE"));
    NetIndex sel = t.fresh("ws", n);
    t.connect(d, "OUT", sel);

    Instance& m = t.add("rmux", genus::make_mux_spec(w, n));
    for (int i = 0; i < n; ++i) {
      ComponentSpec reg = genus::make_register_spec(w, true, false);
      Instance& r = t.add("word", reg);
      t.connect(r, "D", t.port("WD"));
      t.connect(r, "EN", sel, i);
      t.connect(r, "CLK", t.port("CLK"));
      NetIndex q = t.fresh("q", w);
      t.connect(r, "Q", q);
      t.connect(m, "I" + std::to_string(i), q);
    }
    t.connect(m, "SEL", t.port("RA"));
    t.connect(m, "OUT", t.port("RD"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Small memories decompose exactly like register files (shared address).
class MemoryAsRegisterArrayRule final : public Rule {
 public:
  explicit MemoryAsRegisterArrayRule(bool library_specific)
      : Rule("memory-register-array", "storage-array-composition",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kMemory && spec.size >= 2 && spec.size <= 64 &&
           (spec.size & (spec.size - 1)) == 0;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "memarray");
    const int w = spec.width;
    const int n = spec.size;
    const int abits = clog2(n);

    ComponentSpec dec = genus::make_decoder_spec(abits);
    dec.enable = true;
    Instance& d = t.add("wdec", dec);
    t.connect(d, "IN", t.port("ADDR"));
    t.connect(d, "EN", t.port("WE"));
    NetIndex sel = t.fresh("ws", n);
    t.connect(d, "OUT", sel);

    Instance& m = t.add("rmux", genus::make_mux_spec(w, n));
    for (int i = 0; i < n; ++i) {
      ComponentSpec reg = genus::make_register_spec(w, true, false);
      Instance& r = t.add("word", reg);
      t.connect(r, "D", t.port("DIN"));
      t.connect(r, "EN", sel, i);
      t.connect(r, "CLK", t.port("CLK"));
      NetIndex q = t.fresh("q", w);
      t.connect(r, "Q", q);
      t.connect(m, "I" + std::to_string(i), q);
    }
    t.connect(m, "SEL", t.port("ADDR"));
    t.connect(m, "OUT", t.port("DOUT"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Tristate buses slice into per-bit tristate buffers.
class TristateSliceRule final : public Rule {
 public:
  explicit TristateSliceRule(bool library_specific)
      : Rule("tristate-bit-slice", "bit-slice", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kTristate && spec.width > 1;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "tslice");
    for (int b = 0; b < spec.width; ++b) {
      ComponentSpec child = spec;
      child.width = 1;
      Instance& u = t.add("ts", child);
      t.connect(u, "IN", t.port("IN"), b);
      t.connect(u, "OE", t.port("OE"));
      t.connect(u, "OUT", t.port("OUT"), b);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Wired-or and bus merging realized as an OR plane.
class WiredOrRule final : public Rule {
 public:
  explicit WiredOrRule(bool library_specific)
      : Rule("wired-or-plane", "gate-level-realization", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return (spec.kind == Kind::kWiredOr || spec.kind == Kind::kBus) &&
           spec.size >= 2;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "worplane");
    Instance& g = t.add(
        "or", genus::make_gate_spec(Op::kOr, spec.width, spec.size));
    for (int i = 0; i < spec.size; ++i) {
      t.connect(g, "I" + std::to_string(i), t.port("I" + std::to_string(i)));
    }
    t.connect(g, "OUT", t.port("OUT"));
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Interface pass-throughs (ports, buffers, clock drivers, Schmitt
/// triggers, delays) realize as buffer arrays.
class InterfaceBufferRule final : public Rule {
 public:
  explicit InterfaceBufferRule(bool library_specific)
      : Rule("interface-buffer-array", "gate-level-realization",
             library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    switch (spec.kind) {
      case Kind::kPort:
      case Kind::kBuffer:
      case Kind::kClockDriver:
      case Kind::kSchmittTrigger:
      case Kind::kDelay:
        return true;
      default:
        return false;
    }
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "ifbuf");
    t.buf_slice(t.port("IN"), 0, t.port("OUT"), 0, spec.width);
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

/// Switchbox concat/extract are wiring-only (buffer arrays keep the
/// netlist single-driver).
class SwitchboxRule final : public Rule {
 public:
  explicit SwitchboxRule(bool library_specific)
      : Rule("switchbox-wiring", "wiring", library_specific) {}

  bool applies(const ComponentSpec& spec, const RuleContext&) const override {
    return spec.kind == Kind::kConcat || spec.kind == Kind::kExtract;
  }
  std::vector<Module> expand(const ComponentSpec& spec,
                             const RuleContext&) const override {
    TemplateBuilder t(spec, "sbox");
    if (spec.kind == Kind::kConcat) {
      t.buf_slice(t.port("I1"), 0, t.port("OUT"), 0, spec.size);
      t.buf_slice(t.port("I0"), 0, t.port("OUT"), spec.size, spec.width);
    } else {
      t.buf_slice(t.port("IN"), 0, t.port("OUT"), 0,
                  spec.size > 0 ? spec.size : 1);
    }
    std::vector<Module> out;
    out.push_back(std::move(t).take());
    return out;
  }
};

}  // namespace

std::unique_ptr<Rule> make_register_pack_rule(int pack_width,
                                              bool library_specific) {
  return std::make_unique<RegisterPackRule>(pack_width, library_specific);
}

void register_seq_rules(RuleBase& base) {
  base.add(make_register_pack_rule(1, false));
  base.add(std::make_unique<RegisterEnableMuxRule>(false));
  base.add(std::make_unique<CounterSyncRule>(false));
  base.add(std::make_unique<CounterToggleRule>(false));
  base.add(std::make_unique<RegisterFileRule>(false));
  base.add(std::make_unique<MemoryAsRegisterArrayRule>(false));
  base.add(std::make_unique<TristateSliceRule>(false));
  base.add(std::make_unique<WiredOrRule>(false));
  base.add(std::make_unique<InterfaceBufferRule>(false));
  base.add(std::make_unique<SwitchboxRule>(false));
}

}  // namespace bridge::dtas
