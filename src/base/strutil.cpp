#include "base/strutil.h"

#include "base/diag.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace bridge {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    size_t b = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > b) out.emplace_back(s.substr(b, i - b));
  }
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_double(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

double parse_double_token(const std::string& token, int line) {
  try {
    size_t used = 0;
    double v = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ParseError("expected a number, got '" + token + "'", line, 1);
  }
}

std::string sanitize_identifier(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  while (!out.empty() && out.front() == '_') out.erase(out.begin());
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "u_" + out;
  }
  // Collapse runs of underscores (VHDL forbids "__").
  std::string collapsed;
  for (char c : out) {
    if (c == '_' && !collapsed.empty() && collapsed.back() == '_') continue;
    collapsed.push_back(c);
  }
  if (!collapsed.empty() && collapsed.back() == '_') collapsed.pop_back();
  return collapsed;
}

}  // namespace bridge
