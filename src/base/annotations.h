// Clang thread-safety analysis: annotated mutex primitives.
//
// Every shared-state site in the codebase declares which mutex guards
// which members (`BRIDGE_GUARDED_BY`), and every function that expects a
// lock held says so (`BRIDGE_REQUIRES`). Clang's -Wthread-safety then
// proves, at compile time, that no annotated member is touched without
// its lock — the CI clang leg builds with -Werror=thread-safety, so a
// forgotten lock is a build break, not a tsan flake. GCC compiles the
// same code unchanged: all attributes expand to nothing outside clang.
//
// The analysis only tracks types that are themselves annotated, and
// libstdc++'s std::mutex is not — hence the thin shims below. They add
// no state and no behavior beyond std::mutex / std::lock_guard /
// std::unique_lock: `base::Mutex` is layout- and cost-identical to the
// std::mutex it wraps, and `base::UniqueLock` *is* a
// std::unique_lock<std::mutex> internally, so std::condition_variable
// waits work natively (via `CondVar` or `UniqueLock::native()`).
//
// Conventions used across the repo:
//  - members: `base::Mutex mu_;` + `T state_ BRIDGE_GUARDED_BY(mu_);`
//  - scoped lock: `base::LockGuard lock(mu_);`
//  - cv wait: `base::UniqueLock lock(mu_); while (!cond) cv_.wait(lock);`
//    (explicit while-loop, not a predicate lambda — lambdas are analyzed
//    as separate functions and cannot see the caller's held locks)
//  - internal helpers documented "caller holds X" become
//    `BRIDGE_REQUIRES(X)` so the contract is checked, not trusted
//  - the rare pattern the analysis cannot express (std::scoped_lock over
//    two objects' mutexes in move-assignment) is marked
//    `BRIDGE_NO_THREAD_SAFETY_ANALYSIS` with a comment justifying it
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define BRIDGE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BRIDGE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names the kind).
#define BRIDGE_CAPABILITY(x) BRIDGE_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define BRIDGE_SCOPED_CAPABILITY BRIDGE_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be read or written while holding the given mutex.
#define BRIDGE_GUARDED_BY(x) BRIDGE_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed while holding the given mutex.
#define BRIDGE_PT_GUARDED_BY(x) BRIDGE_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities held on entry (and exit).
#define BRIDGE_REQUIRES(...) \
  BRIDGE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define BRIDGE_ACQUIRE(...) \
  BRIDGE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define BRIDGE_RELEASE(...) \
  BRIDGE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define BRIDGE_TRY_ACQUIRE(...) \
  BRIDGE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for re-entrant paths).
#define BRIDGE_EXCLUDES(...) \
  BRIDGE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define BRIDGE_RETURN_CAPABILITY(x) \
  BRIDGE_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function body is not analyzed. Every use carries a
/// comment explaining why the analysis cannot express the pattern.
#define BRIDGE_NO_THREAD_SAFETY_ANALYSIS \
  BRIDGE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bridge::base {

/// std::mutex with capability annotations. Drop-in: same cost, same
/// semantics; `native()` exposes the wrapped mutex for std APIs
/// (std::scoped_lock deadlock-avoidance ordering) that need it.
class BRIDGE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BRIDGE_ACQUIRE() { mu_.lock(); }
  void unlock() BRIDGE_RELEASE() { mu_.unlock(); }
  bool try_lock() BRIDGE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for std APIs the shim cannot cover. Callers
  /// locking through native() step outside the analysis and must say why.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard over base::Mutex: scope-held, never released early.
class BRIDGE_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) BRIDGE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() BRIDGE_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over base::Mutex, for condition-variable waits and
/// the manual unlock/relock windows in worker loops. Internally a real
/// std::unique_lock<std::mutex>, so CondVar (and std::condition_variable
/// via native()) waits on it directly.
class BRIDGE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) BRIDGE_ACQUIRE(mu) : lock_(mu.native()) {}
  ~UniqueLock() BRIDGE_RELEASE() = default;
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() BRIDGE_ACQUIRE() { lock_.lock(); }
  void unlock() BRIDGE_RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

  /// The wrapped std::unique_lock, for std::condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable adapted to UniqueLock. wait() releases and
/// reacquires internally; to the analysis the lock is held throughout,
/// which matches the caller-visible contract (held on entry and return).
/// Guarded state read in the wait condition must therefore use the
/// explicit while-loop form — see the header comment.
class CondVar {
 public:
  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bridge::base
