// Diagnostics: error type and assertion helpers used across the library.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bridge {

/// Base error type for all library failures. Carries a human-readable
/// message built from the failing subsystem and condition.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/// Raised when an input text (LEGEND, databook, behavioral language)
/// fails to parse. Carries line/column of the offending token.
class ParseError : public Error {
 public:
  ParseError(const std::string& msg, int line, int column)
      : Error(format(msg, line, column)), line_(line), column_(column) {}

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  static std::string format(const std::string& msg, int line, int column) {
    std::ostringstream os;
    os << "parse error at " << line << ":" << column << ": " << msg;
    return os.str();
  }

  int line_;
  int column_;
};

/// Raised when a synthesis call exceeds its deadline or its CancelToken
/// is triggered (see base/cancel.h and SpaceOptions::deadline_ms). Not a
/// failure of the input or the library: the caller asked for the work to
/// stop, and the pipeline unwound with strong exception safety — the
/// Synthesizer, its caches, and the thread pool all remain usable.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& msg) : Error(msg) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace bridge

/// Internal-invariant check: throws bridge::Error when violated.
/// Used for conditions that indicate a bug in this library, not bad input.
#define BRIDGE_CHECK(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::std::ostringstream bridge_check_os_;                             \
      bridge_check_os_ << msg;                                           \
      ::bridge::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                            bridge_check_os_.str());     \
    }                                                                    \
  } while (false)
