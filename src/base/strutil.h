// Small string helpers shared by the parsers and emitters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bridge {

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any whitespace run; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// ASCII upper/lower-casing (identifiers in LEGEND and databooks are ASCII).
std::string to_upper(std::string_view s);
std::string to_lower(std::string_view s);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` begins with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Render a double with trailing-zero trimming ("12.5", "3", "0.25").
std::string format_double(double v, int max_decimals = 3);

/// VHDL-legal basic identifier derived from an arbitrary name: non-ASCII
/// alphanumerics become underscores, runs of underscores collapse to one,
/// leading/trailing underscores are stripped, and an empty or digit-leading
/// result gets a "u_" prefix. Never returns an empty string. Shared by the
/// VHDL emitter and by DTAS module naming so the two agree: a module named
/// with this function survives emission verbatim.
std::string sanitize_identifier(const std::string& name);

/// Parse a token that must be entirely a number; throws ParseError
/// ("expected a number, got '...'") carrying `line` on anything else.
/// Shared by the data-book and Liberty loaders.
double parse_double_token(const std::string& token, int line);

}  // namespace bridge
