// Deterministic fault injection for exception-safety testing.
//
// The synthesis pipeline promises strong exception safety: after any
// throw — bad_alloc, Cancelled, a rule bug — the Synthesizer stays
// usable, the caches hold no partially-constructed entries, and a retry
// produces byte-identical output. Promises like that rot unless they are
// exercised, so the pipeline carries *probe points* at its failure-prone
// seams (rule expansion, plan evaluation, extraction, cache insertion,
// ThreadPool task bodies) where this injector can be armed to throw
// FaultInjected on a deterministic schedule.
//
// Determinism: every probe site keeps its own occurrence counter, and an
// armed probe fires iff mix(seed, site, occurrence) % period == 0 — a
// pure function of (seed, site, occurrence). The same seed therefore
// fires the same site occurrences in every run, regardless of how other
// sites interleave, which is what makes a failure replayable from just
// the BRIDGE_FAULT_SEED value in a CI log. (Under a thread pool, *which
// task* draws a firing occurrence can vary with scheduling; the firing
// schedule itself never does.)
//
// Cost when disarmed (the only state production code ever runs in): one
// relaxed atomic load per probe. The injector never arms itself from the
// environment — tests that want the env seed call arm_from_env()
// explicitly, so a BRIDGE_FAULT_SEED exported by the CI fault matrix
// perturbs only the tests that opt in.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "base/annotations.h"
#include "base/diag.h"

namespace bridge::base {

/// Thrown by an armed probe. Distinct from Error subtypes real failures
/// use, so tests can assert the injected fault — and nothing else —
/// surfaced.
class FaultInjected : public Error {
 public:
  FaultInjected(const std::string& site, long occurrence);

  const std::string& site() const { return site_; }
  long occurrence() const { return occurrence_; }

 private:
  std::string site_;
  long occurrence_;
};

class FaultInjector {
 public:
  static FaultInjector& global();

  /// Probabilistic-deterministic mode: occurrence n of site s throws iff
  /// mix(seed, s, n) % period == 0. period == 0 is counting mode: probes
  /// are tallied but never fire (used to assert probe coverage).
  void arm(std::uint64_t seed, std::uint64_t period = 64);

  /// One-shot mode: the nth future probe (1-based, counted from this
  /// call) whose site name contains `site_substr` throws, then the
  /// injector disarms itself.
  void arm_site(const std::string& site_substr, long nth = 1);

  void disarm();
  bool armed() const {
    return mode_.load(std::memory_order_relaxed) != kOff;
  }

  /// Arm from BRIDGE_FAULT_SEED (decimal; period from BRIDGE_FAULT_PERIOD,
  /// default 64). Returns false — and stays disarmed — when the variable
  /// is unset or unparsable.
  bool arm_from_env();

  /// Occurrences recorded at `site` since the last arm (any mode).
  long probes(const std::string& site) const;
  /// Faults thrown since the last arm.
  long injected() const;

  /// The probe itself: a no-op (one relaxed load) when disarmed.
  void probe(const char* site) {
    const int mode = mode_.load(std::memory_order_relaxed);
    if (mode == kOff) return;
    slow_probe(site, mode);
  }

 private:
  enum Mode { kOff = 0, kSeeded = 1, kOneShot = 2 };

  void slow_probe(const char* site, int mode);

  std::atomic<int> mode_{kOff};
  mutable Mutex mu_;  // taken on armed paths only
  std::uint64_t seed_ BRIDGE_GUARDED_BY(mu_) = 0;
  std::uint64_t period_ BRIDGE_GUARDED_BY(mu_) = 0;
  std::string oneshot_site_ BRIDGE_GUARDED_BY(mu_);
  long oneshot_left_ BRIDGE_GUARDED_BY(mu_) = 0;
  long injected_ BRIDGE_GUARDED_BY(mu_) = 0;
  std::map<std::string, long> counts_ BRIDGE_GUARDED_BY(mu_);
};

}  // namespace bridge::base
