// A persistent pool of worker threads for blocking fork-join loops.
//
// The design-space odometer (see dtas/design_space.cpp) is the motivating
// user: it repeatedly fans a contiguous combination range out into shards,
// and spawning std::threads per odometer call would cost more than a small
// shard is worth. The pool keeps its workers parked on a condition
// variable between runs, so the steady-state cost of a fork-join is two
// lock acquisitions per task.
//
// run(n, fn) executes fn(i) for every i in [0, n) across the workers *and
// the calling thread*, returning only when every call has finished — a
// pool constructed with W workers therefore applies W+1 threads of
// compute. Tasks are claimed dynamically from a shared counter, so uneven
// shards self-level. All coordination is mutex/condition-variable based
// (no lock-free tricks), which keeps the pool trivially clean under
// ThreadSanitizer.
//
// run() must only be called from one thread at a time, with one
// exception: a task already executing on a pool may call run() on that
// same pool. Such a nested fork-join is detected (a thread-local tracks
// which pool the current thread is executing for) and executed inline on
// the calling thread — the batch still completes, there is just no extra
// parallelism to hand it, and crucially no deadlock: the outer generation
// keeps every worker busy, so queueing a nested generation could wait
// forever. This is what lets node-parallel design-space evaluation nest
// its per-node odometer sharding on the same pool, including under the
// server's queued (submit/drain) mode.
#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/annotations.h"

namespace bridge::base {

class ThreadPool {
 public:
  /// Spawns `workers` parked threads (0 is valid: run() then executes
  /// everything on the calling thread).
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// fn calls completed across every run() so far (all slots).
  long tasks_executed() const;
  /// Largest task count any single run() was asked for — the deepest the
  /// task queue has ever been, since run() enqueues its whole batch up
  /// front and blocks until it drains.
  int peak_queue_depth() const;
  /// Fork-join rounds executed (run() calls with at least one task).
  long runs() const;

  /// Run fn(task, slot) for every task in [0, num_tasks); blocks until all
  /// calls have returned. The caller participates as one of the compute
  /// threads. `slot` identifies the executing thread — 0 for the caller,
  /// 1..workers() for pool threads — so callers can keep one reusable
  /// scratch state per thread rather than per task. If any fn call throws,
  /// the remaining tasks still run to completion and the first exception
  /// is rethrown from run() once every task has finished — workers never
  /// outlive the fn object or the caller's captured state.
  ///
  /// Called from inside a task of this same pool, the batch executes
  /// inline on the calling thread (slot passed to fn stays the outer
  /// task's execution context, reported as 0): see the header comment. On
  /// the inline path an exception aborts the remaining tasks and
  /// propagates immediately — the caller is the only executor, so there
  /// is no batch to drain first.
  void run(int num_tasks, const std::function<void(int, int)>& fn);

  /// Convenience overload for callers that don't need the thread slot.
  void run(int num_tasks, const std::function<void(int)>& fn) {
    run(num_tasks, [&fn](int task, int) { fn(task); });
  }

  /// Queue one task for whichever worker frees up first; returns
  /// immediately. This is the server-scheduler mode: unlike run(), the
  /// caller does not participate, so `fn` executes on a worker slot in
  /// 1..workers() — a pool used this way needs workers() >= 1. Callers
  /// keeping per-slot state (one synthesis session per worker) index it
  /// by the slot argument. `fn` must not throw; anything it does throw
  /// is swallowed (submitted tasks have no join point to rethrow from).
  /// submit() and run() may not be used concurrently on one pool.
  void submit(std::function<void(int)> fn);

  /// Block until every submitted task has finished (queued and in
  /// flight). Safe to call with none outstanding.
  void drain();

 private:
  void worker_loop(int slot);

  /// Invoke fn, capturing the first exception instead of letting it
  /// escape (worker threads must never throw; the caller rethrows late).
  void invoke(const std::function<void(int, int)>& fn, int task, int slot);

  /// The pool (if any) the current thread is executing a task for — set
  /// around every fork-join invoke and submitted-task body, consulted by
  /// run() to detect same-pool nesting. Thread-local so concurrent tasks
  /// on different pools (a server worker driving a design-space pool)
  /// stay independent.
  static thread_local const ThreadPool* current_pool_;

  mutable Mutex mu_;
  CondVar work_cv_;  // workers wait for a new generation
  CondVar done_cv_;  // run() waits for completion
  // fn_ is only non-null while a run is in flight.
  const std::function<void(int, int)>* fn_ BRIDGE_GUARDED_BY(mu_) = nullptr;
  // First exception thrown by an fn call.
  std::exception_ptr error_ BRIDGE_GUARDED_BY(mu_);
  int num_tasks_ BRIDGE_GUARDED_BY(mu_) = 0;
  int next_task_ BRIDGE_GUARDED_BY(mu_) = 0;
  // Tasks not yet finished (claimed or unclaimed).
  int pending_ BRIDGE_GUARDED_BY(mu_) = 0;
  long generation_ BRIDGE_GUARDED_BY(mu_) = 0;
  bool stop_ BRIDGE_GUARDED_BY(mu_) = false;
  // Queued-task mode (submit/drain). Workers prefer the queue over a
  // fork-join generation and, on shutdown, finish every queued task
  // before exiting — a submitted task is never silently dropped.
  std::deque<std::function<void(int)>> submitted_ BRIDGE_GUARDED_BY(mu_);
  int submitted_in_flight_ BRIDGE_GUARDED_BY(mu_) = 0;
  // Introspection (mirrored into obs::Registry under
  // "base.thread_pool.*" so the metrics layer sees every pool at once).
  long tasks_executed_ BRIDGE_GUARDED_BY(mu_) = 0;
  int peak_queue_depth_ BRIDGE_GUARDED_BY(mu_) = 0;
  long runs_ BRIDGE_GUARDED_BY(mu_) = 0;
  std::vector<std::thread> threads_;
};

}  // namespace bridge::base
