// Arbitrary-width bit vectors with unsigned/two's-complement arithmetic.
//
// BitVec is the value type of the simulator (src/sim): library cells and
// generic components are evaluated bit-true on BitVec operands, which lets
// the test suite check that a technology-mapped netlist is functionally
// equivalent to the generic component it implements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bridge {

/// Fixed-width vector of bits (width >= 1, no upper bound). All arithmetic
/// wraps modulo 2^width, matching hardware semantics. Two-valued logic:
/// every bit is 0 or 1 (data-book RTL cells are simulated without X/Z).
class BitVec {
 public:
  /// Zero-valued vector of the given width.
  explicit BitVec(int width = 1);

  /// Vector of `width` bits holding `value` mod 2^width.
  BitVec(int width, std::uint64_t value);

  /// Parse from a binary string, e.g. "1011" (MSB first). Width = length.
  static BitVec from_binary(const std::string& bits);

  /// All-ones vector of the given width.
  static BitVec ones(int width);

  int width() const { return width_; }

  /// Bit access; index 0 is the least-significant bit.
  bool bit(int i) const;
  void set_bit(int i, bool v);

  /// Low 64 bits as an unsigned integer (bits above 63 ignored).
  std::uint64_t to_uint64() const;

  /// Value as a signed integer (two's complement), width <= 64 required.
  std::int64_t to_int64() const;

  /// Resize, zero-extending or truncating at the MSB end.
  BitVec zext(int new_width) const;
  /// Resize, sign-extending or truncating at the MSB end.
  BitVec sext(int new_width) const;

  /// Slice [lo, lo+len) into a new vector of width len.
  BitVec slice(int lo, int len) const;

  /// Concatenate: `hi` occupies the most-significant bits of the result.
  static BitVec concat(const BitVec& hi, const BitVec& lo);

  // --- bitwise (widths must match) -------------------------------------
  BitVec operator~() const;
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;

  // --- arithmetic, modulo 2^width (widths must match) -------------------
  BitVec operator+(const BitVec& o) const;
  BitVec operator-(const BitVec& o) const;
  /// Full add with carry-in; carry_out receives the bit carried out of
  /// the MSB (i.e. unsigned overflow).
  BitVec add_with_carry(const BitVec& o, bool carry_in, bool* carry_out) const;
  /// Product truncated to `out_width` bits (defaults to width()+o.width()).
  BitVec mul(const BitVec& o, int out_width = -1) const;
  /// Unsigned division / remainder; divisor must be nonzero.
  BitVec udiv(const BitVec& o) const;
  BitVec urem(const BitVec& o) const;

  // --- shifts ------------------------------------------------------------
  BitVec shl(int amount) const;
  BitVec lshr(int amount) const;
  BitVec ashr(int amount) const;
  BitVec rotl(int amount) const;
  BitVec rotr(int amount) const;

  // --- comparisons (unsigned; widths must match) --------------------------
  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }
  bool ult(const BitVec& o) const;
  bool ugt(const BitVec& o) const { return o.ult(*this); }
  bool is_zero() const;

  /// MSB-first binary string, e.g. "01101".
  std::string to_binary() const;
  /// Hex string (no prefix), MSB-first, width rounded up to nibbles.
  std::string to_hex() const;

 private:
  static constexpr int kWordBits = 64;
  int words() const { return static_cast<int>(data_.size()); }
  /// Clear any bits above width_ in the top word (class invariant).
  void mask_top();
  static void require_same_width(const BitVec& a, const BitVec& b);

  int width_;
  std::vector<std::uint64_t> data_;
};

}  // namespace bridge
