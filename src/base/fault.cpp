#include "base/fault.h"

#include <cstdlib>
#include <cstring>

namespace bridge::base {

namespace {

/// splitmix64 finalizer — a cheap, well-mixed pure hash; the firing
/// decision must depend on every bit of (seed, site, occurrence).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(const char* site) {
  // FNV-1a over the site name (stable across runs, unlike std::hash).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjected::FaultInjected(const std::string& site, long occurrence)
    : Error("injected fault at " + site + " (occurrence " +
            std::to_string(occurrence) + ")"),
      site_(site),
      occurrence_(occurrence) {}

FaultInjector& FaultInjector::global() {
  static FaultInjector* injector = new FaultInjector;
  return *injector;
}

void FaultInjector::arm(std::uint64_t seed, std::uint64_t period) {
  LockGuard lock(mu_);
  seed_ = seed;
  period_ = period;
  injected_ = 0;
  counts_.clear();
  mode_.store(kSeeded, std::memory_order_relaxed);
}

void FaultInjector::arm_site(const std::string& site_substr, long nth) {
  LockGuard lock(mu_);
  oneshot_site_ = site_substr;
  oneshot_left_ = nth < 1 ? 1 : nth;
  injected_ = 0;
  counts_.clear();
  mode_.store(kOneShot, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  LockGuard lock(mu_);
  mode_.store(kOff, std::memory_order_relaxed);
}

bool FaultInjector::arm_from_env() {
  const char* seed_text = std::getenv("BRIDGE_FAULT_SEED");
  if (seed_text == nullptr || *seed_text == '\0') return false;
  char* end = nullptr;
  const unsigned long long seed = std::strtoull(seed_text, &end, 10);
  if (end == seed_text || *end != '\0') return false;
  std::uint64_t period = 64;
  if (const char* period_text = std::getenv("BRIDGE_FAULT_PERIOD")) {
    const unsigned long long p = std::strtoull(period_text, &end, 10);
    if (end != period_text && *end == '\0') period = p;
  }
  arm(seed, period);
  return true;
}

long FaultInjector::probes(const std::string& site) const {
  LockGuard lock(mu_);
  auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second;
}

long FaultInjector::injected() const {
  LockGuard lock(mu_);
  return injected_;
}

void FaultInjector::slow_probe(const char* site, int mode) {
  long occurrence = 0;
  bool fire = false;
  {
    LockGuard lock(mu_);
    // Re-check under the lock: a concurrent disarm() must win.
    mode = mode_.load(std::memory_order_relaxed);
    if (mode == kOff) return;
    occurrence = ++counts_[site];
    if (mode == kSeeded) {
      fire = period_ != 0 &&
             mix64(seed_ ^ hash_site(site) ^
                   static_cast<std::uint64_t>(occurrence)) %
                     period_ ==
                 0;
    } else if (std::strstr(site, oneshot_site_.c_str()) != nullptr) {
      fire = --oneshot_left_ == 0;
      if (fire) mode_.store(kOff, std::memory_order_relaxed);
    }
    if (fire) ++injected_;
  }
  if (fire) throw FaultInjected(site, occurrence);
}

}  // namespace bridge::base
