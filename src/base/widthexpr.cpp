#include "base/widthexpr.h"

#include <cctype>
#include <cstdint>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge {

namespace {

enum class NodeKind { kConst, kParam, kAdd, kSub, kMul, kDiv, kLog2 };

}  // namespace

struct WidthExpr::Node {
  NodeKind kind;
  long value = 0;        // kConst
  std::string name;      // kParam
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;
};

namespace {

using NodePtr = std::shared_ptr<const WidthExpr::Node>;

NodePtr make_node(NodeKind kind, NodePtr lhs = nullptr, NodePtr rhs = nullptr) {
  auto n = std::make_shared<WidthExpr::Node>();
  n->kind = kind;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

/// Minimal recursive-descent parser over the expression text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  NodePtr parse() {
    NodePtr e = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError("unexpected trailing characters in width expression", 1,
                       static_cast<int>(pos_) + 1);
    }
    return e;
  }

 private:
  NodePtr expr() {
    NodePtr lhs = term();
    for (;;) {
      skip_ws();
      if (consume('+')) {
        lhs = make_node(NodeKind::kAdd, lhs, term());
      } else if (consume('-')) {
        lhs = make_node(NodeKind::kSub, lhs, term());
      } else {
        return lhs;
      }
    }
  }

  NodePtr term() {
    NodePtr lhs = factor();
    for (;;) {
      skip_ws();
      if (consume('*')) {
        lhs = make_node(NodeKind::kMul, lhs, factor());
      } else if (consume('/')) {
        lhs = make_node(NodeKind::kDiv, lhs, factor());
      } else {
        return lhs;
      }
    }
  }

  NodePtr factor() {
    skip_ws();
    if (consume('(')) {
      NodePtr e = expr();
      expect(')');
      return e;
    }
    if (pos_ < text_.size() && std::isdigit(uc(text_[pos_]))) {
      long v = 0;
      while (pos_ < text_.size() && std::isdigit(uc(text_[pos_]))) {
        v = v * 10 + (text_[pos_++] - '0');
      }
      auto num = make_node(NodeKind::kConst);
      const_cast<WidthExpr::Node*>(num.get())->value = v;
      // Implicit multiplication: "2w" means 2 * w.
      if (pos_ < text_.size() && (std::isalpha(uc(text_[pos_])) ||
                                  text_[pos_] == '_')) {
        return make_node(NodeKind::kMul, num, factor());
      }
      return num;
    }
    if (pos_ < text_.size() &&
        (std::isalpha(uc(text_[pos_])) || text_[pos_] == '_')) {
      std::string id;
      while (pos_ < text_.size() &&
             (std::isalnum(uc(text_[pos_])) || text_[pos_] == '_')) {
        id.push_back(text_[pos_++]);
      }
      if (to_lower(id) == "log2") {
        skip_ws();
        expect('(');
        NodePtr e = expr();
        expect(')');
        return make_node(NodeKind::kLog2, e);
      }
      auto p = make_node(NodeKind::kParam);
      const_cast<WidthExpr::Node*>(p.get())->name = to_lower(id);
      return p;
    }
    throw ParseError("expected number, identifier, or '(' in width expression",
                     1, static_cast<int>(pos_) + 1);
  }

  static int uc(char c) { return static_cast<unsigned char>(c); }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(uc(text_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    skip_ws();
    if (!consume(c)) {
      throw ParseError(std::string("expected '") + c + "' in width expression",
                       1, static_cast<int>(pos_) + 1);
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

long eval_node(const WidthExpr::Node& n,
               const std::map<std::string, int>& params) {
  switch (n.kind) {
    case NodeKind::kConst:
      return n.value;
    case NodeKind::kParam: {
      auto it = params.find(n.name);
      if (it == params.end()) {
        throw Error("width expression references unbound parameter '" +
                    n.name + "'");
      }
      return it->second;
    }
    case NodeKind::kAdd:
      return eval_node(*n.lhs, params) + eval_node(*n.rhs, params);
    case NodeKind::kSub:
      return eval_node(*n.lhs, params) - eval_node(*n.rhs, params);
    case NodeKind::kMul:
      return eval_node(*n.lhs, params) * eval_node(*n.rhs, params);
    case NodeKind::kDiv: {
      long d = eval_node(*n.rhs, params);
      if (d == 0) throw Error("division by zero in width expression");
      return eval_node(*n.lhs, params) / d;
    }
    case NodeKind::kLog2: {
      long v = eval_node(*n.lhs, params);
      if (v < 1) throw Error("log2 of non-positive value in width expression");
      long bits = 0;
      long cap = 1;
      while (cap < v) {
        cap <<= 1;
        ++bits;
      }
      return bits < 1 ? 1 : bits;  // a 1-entry select still needs one wire
    }
  }
  throw Error("corrupt width expression node");
}

bool node_is_constant(const WidthExpr::Node& n) {
  switch (n.kind) {
    case NodeKind::kConst:
      return true;
    case NodeKind::kParam:
      return false;
    case NodeKind::kLog2:
      return node_is_constant(*n.lhs);
    default:
      return node_is_constant(*n.lhs) && node_is_constant(*n.rhs);
  }
}

}  // namespace

WidthExpr WidthExpr::parse(const std::string& text) {
  WidthExpr e;
  e.text_ = trim(text);
  e.root_ = Parser(e.text_).parse();
  return e;
}

WidthExpr WidthExpr::constant(long value) {
  return parse(std::to_string(value));
}

int WidthExpr::eval(const std::map<std::string, int>& params) const {
  BRIDGE_CHECK(root_ != nullptr, "evaluating empty width expression");
  long v = eval_node(*root_, params);
  if (v < 1) {
    throw Error("width expression '" + text_ + "' evaluated to " +
                std::to_string(v) + " (must be >= 1)");
  }
  return static_cast<int>(v);
}

bool WidthExpr::is_constant() const {
  BRIDGE_CHECK(root_ != nullptr, "inspecting empty width expression");
  return node_is_constant(*root_);
}

}  // namespace bridge
