#include "base/fileio.h"

#include <fstream>
#include <sstream>

#include "base/diag.h"

namespace bridge {

std::string read_text_file(const std::string& path, std::string_view what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open " + std::string(what) + ": " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace bridge
