#include "base/bitvec.h"

#include "base/diag.h"

namespace bridge {

BitVec::BitVec(int width) : width_(width) {
  BRIDGE_CHECK(width >= 1, "BitVec width must be >= 1, got " << width);
  data_.assign((width + kWordBits - 1) / kWordBits, 0);
}

BitVec::BitVec(int width, std::uint64_t value) : BitVec(width) {
  data_[0] = value;
  mask_top();
}

BitVec BitVec::from_binary(const std::string& bits) {
  BRIDGE_CHECK(!bits.empty(), "empty binary literal");
  BitVec v(static_cast<int>(bits.size()));
  for (size_t i = 0; i < bits.size(); ++i) {
    char c = bits[bits.size() - 1 - i];
    BRIDGE_CHECK(c == '0' || c == '1', "bad binary digit '" << c << "'");
    v.set_bit(static_cast<int>(i), c == '1');
  }
  return v;
}

BitVec BitVec::ones(int width) {
  BitVec v(width);
  for (auto& w : v.data_) w = ~0ULL;
  v.mask_top();
  return v;
}

bool BitVec::bit(int i) const {
  BRIDGE_CHECK(i >= 0 && i < width_, "bit index " << i << " out of width "
                                                  << width_);
  return (data_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVec::set_bit(int i, bool v) {
  BRIDGE_CHECK(i >= 0 && i < width_, "bit index " << i << " out of width "
                                                  << width_);
  std::uint64_t mask = 1ULL << (i % kWordBits);
  if (v) {
    data_[i / kWordBits] |= mask;
  } else {
    data_[i / kWordBits] &= ~mask;
  }
}

std::uint64_t BitVec::to_uint64() const { return data_[0]; }

std::int64_t BitVec::to_int64() const {
  BRIDGE_CHECK(width_ <= 64, "to_int64 requires width <= 64");
  std::uint64_t raw = data_[0];
  if (width_ < 64 && bit(width_ - 1)) {
    raw |= ~0ULL << width_;  // sign extend
  }
  return static_cast<std::int64_t>(raw);
}

BitVec BitVec::zext(int new_width) const {
  BitVec out(new_width);
  int n = std::min(width_, new_width);
  for (int i = 0; i < n; ++i) out.set_bit(i, bit(i));
  return out;
}

BitVec BitVec::sext(int new_width) const {
  BitVec out = zext(new_width);
  if (new_width > width_ && bit(width_ - 1)) {
    for (int i = width_; i < new_width; ++i) out.set_bit(i, true);
  }
  return out;
}

BitVec BitVec::slice(int lo, int len) const {
  BRIDGE_CHECK(lo >= 0 && len >= 1 && lo + len <= width_,
               "slice [" << lo << ", " << lo + len << ") out of width "
                         << width_);
  BitVec out(len);
  for (int i = 0; i < len; ++i) out.set_bit(i, bit(lo + i));
  return out;
}

BitVec BitVec::concat(const BitVec& hi, const BitVec& lo) {
  BitVec out(hi.width_ + lo.width_);
  for (int i = 0; i < lo.width_; ++i) out.set_bit(i, lo.bit(i));
  for (int i = 0; i < hi.width_; ++i) out.set_bit(lo.width_ + i, hi.bit(i));
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out(width_);
  for (int w = 0; w < words(); ++w) out.data_[w] = ~data_[w];
  out.mask_top();
  return out;
}

BitVec BitVec::operator&(const BitVec& o) const {
  require_same_width(*this, o);
  BitVec out(width_);
  for (int w = 0; w < words(); ++w) out.data_[w] = data_[w] & o.data_[w];
  return out;
}

BitVec BitVec::operator|(const BitVec& o) const {
  require_same_width(*this, o);
  BitVec out(width_);
  for (int w = 0; w < words(); ++w) out.data_[w] = data_[w] | o.data_[w];
  return out;
}

BitVec BitVec::operator^(const BitVec& o) const {
  require_same_width(*this, o);
  BitVec out(width_);
  for (int w = 0; w < words(); ++w) out.data_[w] = data_[w] ^ o.data_[w];
  return out;
}

BitVec BitVec::operator+(const BitVec& o) const {
  bool carry_out = false;
  return add_with_carry(o, false, &carry_out);
}

BitVec BitVec::operator-(const BitVec& o) const {
  bool carry_out = false;
  return add_with_carry(~o, true, &carry_out);
}

BitVec BitVec::add_with_carry(const BitVec& o, bool carry_in,
                              bool* carry_out) const {
  require_same_width(*this, o);
  BitVec out(width_);
  bool carry = carry_in;
  for (int i = 0; i < width_; ++i) {
    bool a = bit(i);
    bool b = o.bit(i);
    out.set_bit(i, a ^ b ^ carry);
    carry = (a && b) || (a && carry) || (b && carry);
  }
  *carry_out = carry;
  return out;
}

BitVec BitVec::mul(const BitVec& o, int out_width) const {
  if (out_width < 0) out_width = width_ + o.width_;
  BitVec acc(out_width);
  BitVec a = zext(out_width);
  for (int i = 0; i < o.width_ && i < out_width; ++i) {
    if (o.bit(i)) acc = acc + a.shl(i);
  }
  return acc;
}

BitVec BitVec::udiv(const BitVec& o) const {
  require_same_width(*this, o);
  BRIDGE_CHECK(!o.is_zero(), "division by zero");
  // Schoolbook restoring division, MSB first.
  BitVec quotient(width_);
  BitVec rem(width_);
  for (int i = width_ - 1; i >= 0; --i) {
    rem = rem.shl(1);
    rem.set_bit(0, bit(i));
    if (!rem.ult(o)) {
      rem = rem - o;
      quotient.set_bit(i, true);
    }
  }
  return quotient;
}

BitVec BitVec::urem(const BitVec& o) const {
  BitVec q = udiv(o);
  return *this - q.mul(o, width_);
}

BitVec BitVec::shl(int amount) const {
  BRIDGE_CHECK(amount >= 0, "negative shift");
  BitVec out(width_);
  for (int i = width_ - 1; i >= amount; --i) out.set_bit(i, bit(i - amount));
  return out;
}

BitVec BitVec::lshr(int amount) const {
  BRIDGE_CHECK(amount >= 0, "negative shift");
  BitVec out(width_);
  for (int i = 0; i + amount < width_; ++i) out.set_bit(i, bit(i + amount));
  return out;
}

BitVec BitVec::ashr(int amount) const {
  BitVec out = lshr(amount);
  if (bit(width_ - 1)) {
    for (int i = std::max(0, width_ - amount); i < width_; ++i) {
      out.set_bit(i, true);
    }
  }
  return out;
}

BitVec BitVec::rotl(int amount) const {
  BRIDGE_CHECK(amount >= 0, "negative rotate");
  amount %= width_;
  BitVec out(width_);
  for (int i = 0; i < width_; ++i) out.set_bit((i + amount) % width_, bit(i));
  return out;
}

BitVec BitVec::rotr(int amount) const {
  amount %= width_;
  return rotl(width_ - amount);
}

bool BitVec::operator==(const BitVec& o) const {
  return width_ == o.width_ && data_ == o.data_;
}

bool BitVec::ult(const BitVec& o) const {
  require_same_width(*this, o);
  for (int w = words() - 1; w >= 0; --w) {
    if (data_[w] != o.data_[w]) return data_[w] < o.data_[w];
  }
  return false;
}

bool BitVec::is_zero() const {
  for (auto w : data_) {
    if (w != 0) return false;
  }
  return true;
}

std::string BitVec::to_binary() const {
  std::string s;
  s.reserve(width_);
  for (int i = width_ - 1; i >= 0; --i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

std::string BitVec::to_hex() const {
  static const char* digits = "0123456789abcdef";
  int nibbles = (width_ + 3) / 4;
  std::string s;
  s.reserve(nibbles);
  for (int n = nibbles - 1; n >= 0; --n) {
    int v = 0;
    for (int b = 3; b >= 0; --b) {
      int i = n * 4 + b;
      v = (v << 1) | ((i < width_ && bit(i)) ? 1 : 0);
    }
    s.push_back(digits[v]);
  }
  return s;
}

void BitVec::mask_top() {
  int used = width_ % kWordBits;
  if (used != 0) {
    data_.back() &= (~0ULL >> (kWordBits - used));
  }
}

void BitVec::require_same_width(const BitVec& a, const BitVec& b) {
  BRIDGE_CHECK(a.width_ == b.width_, "width mismatch: " << a.width_ << " vs "
                                                        << b.width_);
}

}  // namespace bridge
