// Symbolic width expressions for parameterizable component generators.
//
// LEGEND port declarations use widths that depend on generator parameters,
// e.g. `I0[w]`, `OUT[2w]`, `SEL[log2(n)]`. A WidthExpr is parsed once when
// the generator description is read and evaluated every time a component is
// generated with concrete parameter values.
#pragma once

#include <map>
#include <memory>
#include <string>

namespace bridge {

/// A parsed width expression. Grammar (LEGEND-style, case-insensitive):
///
///   expr   := term (('+' | '-') term)*
///   term   := factor (('*' | '/') factor)*
///   factor := NUMBER IDENT      -- implicit multiply: "2w" = 2 * w
///           | NUMBER
///           | IDENT
///           | 'log2' '(' expr ')'   -- ceil(log2(...)), >= 1
///           | '(' expr ')'
class WidthExpr {
 public:
  /// Parse from text. Throws ParseError on malformed input.
  static WidthExpr parse(const std::string& text);

  /// Constant expression convenience.
  static WidthExpr constant(long value);

  /// Evaluate with the given parameter bindings. Throws Error on an unbound
  /// identifier, division by zero, or a non-positive result (widths must be
  /// >= 1).
  int eval(const std::map<std::string, int>& params) const;

  /// The original text (normalized) for round-trip emission.
  const std::string& text() const { return text_; }

  /// True if the expression references no parameters.
  bool is_constant() const;

  struct Node;  // implementation detail, defined in widthexpr.cpp

 private:
  WidthExpr() = default;

  std::string text_;
  std::shared_ptr<const Node> root_;  // shared: WidthExpr is a cheap value
};

}  // namespace bridge
