// Interned strings for hot identifier paths.
//
// Net names, module-port names, and instance connection keys are compared,
// hashed, and copied far more often than they are created: every template
// clone, every connection lookup, and every port-direction resolution in
// the synthesis hot path used to pay std::string allocation and
// character-wise comparison. A Symbol is a pointer into a process-wide
// intern pool, so:
//   - construction from the same text always yields the same pointer,
//   - equality and hashing are single pointer operations,
//   - copies are trivial (no allocation), and
//   - the text is available for free via str() (no lock on the read path).
//
// Ordering (operator<) compares the underlying *text*, not the pointer:
// everything that iterates name-sorted containers (connection maps, DRC
// reports, VHDL emission) must stay deterministic and bit-identical to the
// std::string-keyed behavior it replaces. Pointer order would vary from
// run to run; text order cannot.
//
// The pool is append-only and immortal (it is never destroyed, so Symbols
// remain valid during static destruction). Interning takes a mutex; all
// reads are lock-free. The pool grows with the number of *distinct* names
// in the process — bounded in practice by the distinct rule templates and
// specification port lists, both of which the template / spec_ports caches
// already bound.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace bridge::base {

class Symbol {
 public:
  /// The empty string.
  Symbol() : s_(empty_string()) {}
  /// Intern `s` (implicit: string-literal call sites read naturally).
  Symbol(std::string_view s) : s_(intern(s)) {}
  Symbol(const char* s) : s_(intern(s)) {}
  Symbol(const std::string& s) : s_(intern(s)) {}

  const std::string& str() const { return *s_; }
  const char* c_str() const { return s_->c_str(); }
  bool empty() const { return s_->empty(); }
  std::size_t size() const { return s_->size(); }

  /// Implicit read conversion: lets Symbols flow into APIs that take
  /// `const std::string&` (map keys, sanitizers, error text) unchanged.
  operator const std::string&() const { return *s_; }

  /// Identity comparison: one pointer compare.
  friend bool operator==(Symbol a, Symbol b) { return a.s_ == b.s_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.s_ != b.s_; }

  /// Text order (see file comment — determinism, not speed).
  friend bool operator<(Symbol a, Symbol b) {
    return a.s_ != b.s_ && *a.s_ < *b.s_;
  }

  /// Stable within a process run; NOT stable across runs. Never use it to
  /// order user-visible output.
  std::size_t hash() const { return std::hash<const void*>()(s_); }

 private:
  static const std::string* intern(std::string_view s);
  static const std::string* empty_string();

  const std::string* s_;  // never null; points into the immortal pool
};

std::ostream& operator<<(std::ostream& os, Symbol s);

/// Number of distinct strings interned so far (diagnostics / tests).
std::size_t symbol_pool_size();

}  // namespace bridge::base

namespace std {
template <>
struct hash<bridge::base::Symbol> {
  size_t operator()(bridge::base::Symbol s) const noexcept { return s.hash(); }
};
}  // namespace std
