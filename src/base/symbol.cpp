#include "base/symbol.h"

#include <deque>
#include <ostream>
#include <unordered_map>

#include "base/annotations.h"

namespace bridge::base {

namespace {

/// The process-wide pool. Leaked deliberately (never destroyed): Symbols
/// must stay dereferenceable through static destruction, and the pool's
/// lifetime must not depend on translation-unit destruction order.
struct Pool {
  Mutex mu;
  // deque: stable addresses on growth
  std::deque<std::string> strings BRIDGE_GUARDED_BY(mu);
  std::unordered_map<std::string_view, const std::string*> index
      BRIDGE_GUARDED_BY(mu);
};

Pool& pool() {
  static Pool* p = new Pool;
  return *p;
}

}  // namespace

const std::string* Symbol::intern(std::string_view s) {
  Pool& p = pool();
  LockGuard lock(p.mu);
  auto it = p.index.find(s);
  if (it != p.index.end()) return it->second;
  p.strings.emplace_back(s);
  const std::string* stored = &p.strings.back();
  p.index.emplace(std::string_view(*stored), stored);
  return stored;
}

const std::string* Symbol::empty_string() {
  static const std::string* empty = intern(std::string_view());
  return empty;
}

std::size_t symbol_pool_size() {
  Pool& p = pool();
  LockGuard lock(p.mu);
  return p.strings.size();
}

std::ostream& operator<<(std::ostream& os, Symbol s) { return os << s.str(); }

}  // namespace bridge::base
