#include "base/thread_pool.h"

namespace bridge::base {

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) workers = 0;
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    // Slot 0 is the caller inside run(); workers take 1..workers().
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::invoke(const std::function<void(int, int)>& fn, int task,
                        int slot) {
  try {
    fn(task, slot);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_ == nullptr) error_ = std::current_exception();
  }
}

void ThreadPool::run(int num_tasks, const std::function<void(int, int)>& fn) {
  if (num_tasks <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    error_ = nullptr;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    pending_ = num_tasks;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a compute thread too: claim tasks until none are left.
  for (;;) {
    int task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_task_ >= num_tasks_) break;
      task = next_task_++;
    }
    invoke(fn, task, /*slot=*/0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
  }
  // Wait until every claimed task has finished (workers included) before
  // letting fn — and anything it captures — go out of scope.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(int slot) {
  long seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (generation_ != seen && next_task_ < num_tasks_);
    });
    if (stop_) return;
    seen = generation_;
    while (next_task_ < num_tasks_) {
      const int task = next_task_++;
      const std::function<void(int, int)>* fn = fn_;
      lock.unlock();
      invoke(*fn, task, slot);
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace bridge::base
