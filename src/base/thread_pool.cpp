#include "base/thread_pool.h"

#include <algorithm>

#include "base/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bridge::base {

namespace {

/// Pool metrics, resolved once. Task latency is recorded per *task* (a
/// task is a whole odometer shard or comparable unit — coarse enough
/// that one clock pair per task is noise).
struct PoolMetrics {
  obs::Counter& tasks = obs::Registry::global().counter(
      "base.thread_pool.tasks_executed");
  obs::Counter& runs =
      obs::Registry::global().counter("base.thread_pool.runs");
  obs::Gauge& queue_depth =
      obs::Registry::global().gauge("base.thread_pool.queue_depth");
  obs::Histogram& task_latency_us = obs::Registry::global().histogram(
      "base.thread_pool.task_latency_us");

  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

}  // namespace

thread_local const ThreadPool* ThreadPool::current_pool_ = nullptr;

namespace {

/// Scoped set/restore of a thread-local pool marker. Restore (rather than
/// clear) keeps cross-pool nesting honest: a design-space pool task that
/// itself runs on a server pool thread must restore the server pool as
/// the thread's context, not null.
struct CurrentPoolScope {
  const ThreadPool*& slot;
  const ThreadPool* prev;
  CurrentPoolScope(const ThreadPool*& s, const ThreadPool* p)
      : slot(s), prev(s) {
    slot = p;
  }
  ~CurrentPoolScope() { slot = prev; }
};

}  // namespace

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) workers = 0;
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    // Slot 0 is the caller inside run(); workers take 1..workers().
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

long ThreadPool::tasks_executed() const {
  LockGuard lock(mu_);
  return tasks_executed_;
}

int ThreadPool::peak_queue_depth() const {
  LockGuard lock(mu_);
  return peak_queue_depth_;
}

long ThreadPool::runs() const {
  LockGuard lock(mu_);
  return runs_;
}

void ThreadPool::invoke(const std::function<void(int, int)>& fn, int task,
                        int slot) {
  obs::Span span("pool.task", "base");
  const std::int64_t t0 = obs::Tracer::now_ns();
  CurrentPoolScope nested_guard(current_pool_, this);
  try {
    // Inside the try: an injected fault takes the exact path a throwing
    // task takes — captured below, batch drains, run() rethrows.
    FaultInjector::global().probe("base.thread_pool.task");
    fn(task, slot);
  } catch (...) {
    LockGuard lock(mu_);
    if (error_ == nullptr) error_ = std::current_exception();
  }
  PoolMetrics::get().task_latency_us.record(
      static_cast<double>(obs::Tracer::now_ns() - t0) / 1000.0);
}

void ThreadPool::run(int num_tasks, const std::function<void(int, int)>& fn) {
  if (num_tasks <= 0) return;
  PoolMetrics& metrics = PoolMetrics::get();
  if (current_pool_ == this) {
    // Nested fork-join from inside one of this pool's own tasks: every
    // other thread may be busy with (or waiting on) the outer generation,
    // so handing the batch to the shared counters could deadlock. Execute
    // inline instead — correctness is identical, the batch just runs at
    // this thread's parallelism. Slot 0 because the nested caller's own
    // per-slot scratch is the only one it may touch.
    for (int task = 0; task < num_tasks; ++task) fn(task, /*slot=*/0);
    {
      LockGuard lock(mu_);
      tasks_executed_ += num_tasks;
      ++runs_;
    }
    metrics.tasks.add(num_tasks);
    metrics.runs.add(1);
    return;
  }
  {
    LockGuard lock(mu_);
    fn_ = &fn;
    error_ = nullptr;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    pending_ = num_tasks;
    ++generation_;
    ++runs_;
    peak_queue_depth_ = std::max(peak_queue_depth_, num_tasks);
  }
  metrics.runs.add(1);
  metrics.queue_depth.set(num_tasks);  // folds into the registry peak
  work_cv_.notify_all();
  // The caller is a compute thread too: claim tasks until none are left.
  for (;;) {
    int task;
    {
      LockGuard lock(mu_);
      if (next_task_ >= num_tasks_) break;
      task = next_task_++;
    }
    invoke(fn, task, /*slot=*/0);
    {
      LockGuard lock(mu_);
      --pending_;
    }
  }
  // Wait until every claimed task has finished (workers included) before
  // letting fn — and anything it captures — go out of scope.
  UniqueLock lock(mu_);
  while (pending_ != 0) done_cv_.wait(lock);
  fn_ = nullptr;
  tasks_executed_ += num_tasks_;
  metrics.tasks.add(num_tasks_);
  metrics.queue_depth.set(0);
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::submit(std::function<void(int)> fn) {
  {
    LockGuard lock(mu_);
    submitted_.push_back(std::move(fn));
    peak_queue_depth_ = std::max(
        peak_queue_depth_,
        static_cast<int>(submitted_.size()) + submitted_in_flight_);
  }
  work_cv_.notify_one();
}

void ThreadPool::drain() {
  UniqueLock lock(mu_);
  while (!submitted_.empty() || submitted_in_flight_ != 0) {
    done_cv_.wait(lock);
  }
}

void ThreadPool::worker_loop(int slot) {
  long seen = 0;
  UniqueLock lock(mu_);
  for (;;) {
    while (!(stop_ || !submitted_.empty() ||
             (generation_ != seen && next_task_ < num_tasks_))) {
      work_cv_.wait(lock);
    }
    if (!submitted_.empty()) {
      std::function<void(int)> task = std::move(submitted_.front());
      submitted_.pop_front();
      ++submitted_in_flight_;
      lock.unlock();
      {
        obs::Span span("pool.task", "base");
        const std::int64_t t0 = obs::Tracer::now_ns();
        CurrentPoolScope nested_guard(current_pool_, this);
        try {
          // No fault probe here: a fault that fired before task(slot)
          // would skip the task entirely, and submitted tasks have
          // waiters (a server reader blocked on its completion signal)
          // that a skipped task would strand. Submitted work carries its
          // own probe sites inside the task body ("server.request").
          task(slot);
        } catch (...) {
          // Submitted tasks have no join point to rethrow from; their
          // contract is to not throw, so a stray exception dies here
          // rather than poison an unrelated run().
        }
        PoolMetrics::get().task_latency_us.record(
            static_cast<double>(obs::Tracer::now_ns() - t0) / 1000.0);
      }
      lock.lock();
      ++tasks_executed_;
      PoolMetrics::get().tasks.add(1);
      --submitted_in_flight_;
      if (submitted_.empty() && submitted_in_flight_ == 0) {
        done_cv_.notify_all();
      }
      continue;
    }
    if (stop_) return;
    seen = generation_;
    while (next_task_ < num_tasks_) {
      const int task = next_task_++;
      const std::function<void(int, int)>* fn = fn_;
      lock.unlock();
      invoke(*fn, task, slot);
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace bridge::base
