// Cooperative cancellation and wall-clock deadlines.
//
// A long-lived synthesis service must bound *time* as well as memory: a
// request against a pathological spec cannot be allowed to hold a worker
// forever. Cancellation here is cooperative — nothing is interrupted
// mid-instruction; the design-space hot loops poll a Deadline at coarse
// checkpoints (per rule application, per odometer chunk, per extracted
// alternative — never per combination) and unwind via bridge::Cancelled
// or stop early in best-effort mode (see SpaceOptions::deadline_ms).
//
// Polling a Deadline reads a steady clock and a relaxed atomic; it never
// mutates anything, so a run whose deadline does not fire is bit-identical
// to an unbounded run.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

namespace bridge::base {

/// A thread-safe cancellation flag, shared by the requester (who calls
/// request_cancel, typically from another thread) and the workers polling
/// it through a Deadline.
class CancelToken {
 public:
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A point in time after which cooperative work should stop, optionally
/// combined with an external CancelToken. Default-constructed Deadlines
/// are inactive: expired() is always false and active() lets hot paths
/// skip the clock read entirely.
class Deadline {
 public:
  Deadline() = default;

  /// Expires `ms` milliseconds from now (measured on the steady clock).
  static Deadline after_ms(long ms,
                           std::shared_ptr<const CancelToken> token = {}) {
    Deadline d;
    d.has_time_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    d.token_ = std::move(token);
    return d;
  }

  /// Never expires on its own; fires only when the token is cancelled.
  static Deadline cancel_only(std::shared_ptr<const CancelToken> token) {
    Deadline d;
    d.token_ = std::move(token);
    return d;
  }

  bool active() const { return has_time_ || token_ != nullptr; }

  bool expired() const {
    if (token_ != nullptr && token_->cancelled()) return true;
    return has_time_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool has_time_ = false;
  std::chrono::steady_clock::time_point at_{};
  std::shared_ptr<const CancelToken> token_;
};

}  // namespace bridge::base
