// 64-bit content fingerprints.
//
// The delta-aware cache layers (cells::CellLibrary fingerprints, the
// template / extraction cache keys in src/dtas) need a stable, fast,
// process-independent hash over heterogeneous content: strings, integers,
// enums, and exact double values. std::hash promises none of that
// (implementation-defined, salted in some standard libraries), so the
// fingerprint helpers here fix the algorithm: FNV-1a over bytes, with a
// splitmix64 finalizer for commutative combining.
//
// Fingerprints are identities for *caching*, not security: a 64-bit
// collision between two live keys is astronomically unlikely and would
// cost a wrong cache share, so none of this is cryptographic.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace bridge::base {

using Fingerprint = std::uint64_t;

inline constexpr Fingerprint kFingerprintSeed = 1469598103934665603ULL;

/// FNV-1a over a byte range, continuing from `h`.
inline Fingerprint fp_bytes(Fingerprint h, const void* data,
                            std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Fold a 64-bit value (little pieces feed through fp_bytes so the result
/// does not depend on host integer widths beyond the fixed 8 bytes).
inline Fingerprint fp_u64(Fingerprint h, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  return fp_bytes(h, bytes, sizeof(bytes));
}

/// Fold a string: length-prefixed, so concatenation ambiguities ("ab"+"c"
/// vs "a"+"bc") cannot alias.
inline Fingerprint fp_str(Fingerprint h, const std::string& s) {
  h = fp_u64(h, s.size());
  return fp_bytes(h, s.data(), s.size());
}

/// Fold a double by exact bit pattern: equal values fingerprint equally,
/// any numeric edit changes the result. (-0.0 vs 0.0 differ — fine for
/// data-book numbers, which are written, not computed.)
inline Fingerprint fp_double(Fingerprint h, double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return fp_u64(h, bits);
}

/// splitmix64 finalizer: spreads a fingerprint's entropy across all 64
/// bits, so commutative combines (sum / xor of mixed values) stay
/// collision-resistant for order-independent sets.
inline Fingerprint fp_mix(Fingerprint x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace bridge::base
