#include "base/diag.h"

namespace bridge::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "internal check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace bridge::detail
