// Tiny file helpers shared by the loaders.
#pragma once

#include <string>
#include <string_view>

namespace bridge {

/// Slurp a whole file (binary mode). Throws Error
/// ("cannot open <what>: <path>") when the file cannot be read; `what`
/// names the kind of file for the message.
std::string read_text_file(const std::string& path,
                           std::string_view what = "file");

}  // namespace bridge
