#include "genus/spec.h"

#include <memory>
#include <sstream>
#include <unordered_map>

#include "base/annotations.h"
#include "base/diag.h"
#include "base/fingerprint.h"
#include "base/strutil.h"

namespace bridge::genus {

namespace {

/// ceil(log2(n)) with a floor of 1 (a 1-way select still needs one wire).
int clog2(int n) {
  int bits = 0;
  int cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits < 1 ? 1 : bits;
}

PortSpec in(base::Symbol name, int width, PortRole role = PortRole::kData) {
  return PortSpec{name, PortDir::kIn, width, role};
}

PortSpec out(base::Symbol name, int width, PortRole role = PortRole::kData) {
  return PortSpec{name, PortDir::kOut, width, role};
}

}  // namespace

std::string style_name(Style s) {
  switch (s) {
    case Style::kAny:
      return "ANY";
    case Style::kRipple:
      return "RIPPLE";
    case Style::kCarryLookahead:
      return "CLA";
    case Style::kCarrySelect:
      return "CARRY_SELECT";
    case Style::kSynchronous:
      return "SYNCHRONOUS";
    case Style::kMuxTree:
      return "MUX_TREE";
    case Style::kArray:
      return "ARRAY";
  }
  throw Error("bad Style value");
}

Style style_from_name(const std::string& name) {
  std::string u = to_upper(trim(name));
  if (u == "ANY") return Style::kAny;
  if (u == "RIPPLE") return Style::kRipple;
  if (u == "CLA" || u == "CARRY_LOOKAHEAD") return Style::kCarryLookahead;
  if (u == "CARRY_SELECT") return Style::kCarrySelect;
  if (u == "SYNCHRONOUS") return Style::kSynchronous;
  if (u == "MUX_TREE") return Style::kMuxTree;
  if (u == "ARRAY") return Style::kArray;
  throw Error("unknown style '" + name + "'");
}

std::string representation_name(Representation r) {
  switch (r) {
    case Representation::kBinary:
      return "BINARY";
    case Representation::kBcd:
      return "BCD";
  }
  throw Error("bad Representation value");
}

std::string ComponentSpec::key() const {
  std::ostringstream os;
  os << kind_name(kind) << ".w" << width;
  if (size != 0) os << ".n" << size;
  if (style != Style::kAny) os << "." << style_name(style);
  if (rep != Representation::kBinary) os << "." << representation_name(rep);
  if (carry_in) os << ".ci";
  if (carry_out) os << ".co";
  if (enable) os << ".en";
  if (async_set) os << ".as";
  if (async_reset) os << ".ar";
  if (tristate) os << ".ts";
  if (!ops.empty()) os << "[" << ops.to_string() << "]";
  return os.str();
}

std::string ComponentSpec::pretty() const {
  std::ostringstream os;
  os << width << "-bit " << kind_name(kind);
  if (size != 0) os << " (n=" << size << ")";
  int nops = ops.size();
  if (nops > 1) os << ", " << nops << "-function";
  if (style != Style::kAny) os << ", " << style_name(style);
  return os.str();
}

int ComponentSpec::select_width() const { return clog2(ops.size()); }

ComponentSpec make_gate_spec(Op fn, int width, int fanin) {
  ComponentSpec s;
  s.kind = Kind::kGate;
  s.width = width;
  s.size = (fn == Op::kLnot || fn == Op::kBuf) ? 1 : fanin;
  s.ops = OpSet{fn};
  return s;
}

ComponentSpec make_adder_spec(int width, bool carry_in, bool carry_out) {
  ComponentSpec s;
  s.kind = Kind::kAdder;
  s.width = width;
  s.ops = OpSet{Op::kAdd};
  s.carry_in = carry_in;
  s.carry_out = carry_out;
  return s;
}

ComponentSpec make_subtractor_spec(int width) {
  ComponentSpec s;
  s.kind = Kind::kSubtractor;
  s.width = width;
  s.ops = OpSet{Op::kSub};
  return s;
}

ComponentSpec make_addsub_spec(int width) {
  ComponentSpec s;
  s.kind = Kind::kAddSub;
  s.width = width;
  s.ops = OpSet{Op::kAdd, Op::kSub};
  s.carry_in = true;
  s.carry_out = true;
  return s;
}

ComponentSpec make_alu_spec(int width, OpSet ops) {
  ComponentSpec s;
  s.kind = Kind::kAlu;
  s.width = width;
  s.ops = ops;
  s.carry_in = true;
  s.carry_out = true;
  return s;
}

ComponentSpec make_mux_spec(int width, int num_inputs) {
  ComponentSpec s;
  s.kind = Kind::kMux;
  s.width = width;
  s.size = num_inputs;
  s.ops = OpSet{Op::kPass};
  return s;
}

ComponentSpec make_register_spec(int width, bool enable, bool async_reset) {
  ComponentSpec s;
  s.kind = Kind::kRegister;
  s.width = width;
  s.ops = OpSet{Op::kLoad};
  s.enable = enable;
  s.async_reset = async_reset;
  return s;
}

ComponentSpec make_counter_spec(int width, OpSet ops, Style style) {
  ComponentSpec s;
  s.kind = Kind::kCounter;
  s.width = width;
  s.ops = ops;
  s.style = style;
  return s;
}

ComponentSpec make_comparator_spec(int width, OpSet ops) {
  ComponentSpec s;
  s.kind = Kind::kComparator;
  s.width = width;
  s.ops = ops;
  return s;
}

ComponentSpec make_decoder_spec(int input_width, Representation rep) {
  ComponentSpec s;
  s.kind = Kind::kDecoder;
  s.width = input_width;
  s.size = rep == Representation::kBcd ? 10 : (1 << input_width);
  s.ops = OpSet{Op::kDecode};
  s.rep = rep;
  return s;
}

ComponentSpec make_encoder_spec(int output_width, Representation rep) {
  ComponentSpec s;
  s.kind = Kind::kEncoder;
  s.width = output_width;
  s.size = rep == Representation::kBcd ? 10 : (1 << output_width);
  s.ops = OpSet{Op::kEncode};
  s.rep = rep;
  return s;
}

ComponentSpec make_shifter_spec(int width, OpSet ops) {
  ComponentSpec s;
  s.kind = Kind::kShifter;
  s.width = width;
  s.ops = ops;
  return s;
}

ComponentSpec make_barrel_shifter_spec(int width, OpSet ops) {
  ComponentSpec s;
  s.kind = Kind::kBarrelShifter;
  s.width = width;
  s.ops = ops;
  s.style = Style::kMuxTree;
  return s;
}

ComponentSpec make_multiplier_spec(int width_a, int width_b) {
  ComponentSpec s;
  s.kind = Kind::kMultiplier;
  s.width = width_a;
  s.size = width_b;
  s.ops = OpSet{Op::kMul};
  return s;
}

ComponentSpec make_logic_unit_spec(int width, OpSet ops) {
  ComponentSpec s;
  s.kind = Kind::kLogicUnit;
  s.width = width;
  s.ops = ops;
  return s;
}

namespace {

std::vector<PortSpec> build_spec_ports(const ComponentSpec& spec) {
  std::vector<PortSpec> p;
  // Most kinds have a handful of ports; fan-in-shaped kinds (gates, muxes)
  // have size+2. One reservation avoids the realloc churn that made this
  // function the top allocation site in synthesis profiles.
  p.reserve(static_cast<size_t>(spec.size > 0 ? spec.size + 4 : 8));
  const int w = spec.width;
  const int n = spec.size;
  switch (spec.kind) {
    case Kind::kGate: {
      int fanin = n > 0 ? n : 2;
      for (int i = 0; i < fanin; ++i) p.push_back(in("I" + std::to_string(i), w));
      p.push_back(out("OUT", w));
      break;
    }
    case Kind::kLogicUnit:
      p.push_back(in("A", w));
      p.push_back(in("B", w));
      if (spec.ops.size() > 1) {
        p.push_back(in("F", spec.select_width(), PortRole::kSelect));
      }
      p.push_back(out("OUT", w));
      break;
    case Kind::kMux:
      for (int i = 0; i < n; ++i) p.push_back(in("I" + std::to_string(i), w));
      p.push_back(in("SEL", clog2(n), PortRole::kSelect));
      p.push_back(out("OUT", w));
      break;
    case Kind::kSelector:
      for (int i = 0; i < n; ++i) p.push_back(in("I" + std::to_string(i), w));
      p.push_back(in("SEL", n, PortRole::kSelect));  // one-hot
      p.push_back(out("OUT", w));
      break;
    case Kind::kDecoder:
      p.push_back(in("IN", w));
      if (spec.enable) p.push_back(in("EN", 1, PortRole::kEnable));
      p.push_back(out("OUT", n));
      break;
    case Kind::kEncoder:
      p.push_back(in("IN", n));
      p.push_back(out("OUT", w));
      break;
    case Kind::kComparator:
      p.push_back(in("A", w));
      p.push_back(in("B", w));
      for (Op op : spec.ops.to_vector()) {
        p.push_back(out(op_name(op), 1, PortRole::kStatus));
      }
      break;
    case Kind::kAlu:
      // Data-book ALU convention: OUT carries the arithmetic/logic result
      // selected by F; comparison predicates are dedicated status pins
      // (always valid, computed from A and B alone).
      p.push_back(in("A", w));
      p.push_back(in("B", w));
      if (spec.carry_in) p.push_back(in("CI", 1, PortRole::kCarry));
      p.push_back(in("F", spec.select_width(), PortRole::kSelect));
      p.push_back(out("OUT", w));
      if (spec.carry_out) p.push_back(out("CO", 1, PortRole::kCarry));
      for (Op op : spec.ops.to_vector()) {
        if (op_is_compare(op)) {
          p.push_back(out(op_name(op), 1, PortRole::kStatus));
        }
      }
      break;
    case Kind::kShifter:
      p.push_back(in("IN", w));
      if (spec.ops.size() > 1) {
        p.push_back(in("F", spec.select_width(), PortRole::kSelect));
      }
      p.push_back(out("OUT", w));
      break;
    case Kind::kBarrelShifter:
      p.push_back(in("IN", w));
      p.push_back(in("AMT", clog2(w), PortRole::kSelect));
      if (spec.ops.size() > 1) {
        p.push_back(in("F", spec.select_width(), PortRole::kSelect));
      }
      p.push_back(out("OUT", w));
      break;
    case Kind::kMultiplier:
      p.push_back(in("A", w));
      p.push_back(in("B", n));
      p.push_back(out("P", w + n));
      break;
    case Kind::kDivider:
      p.push_back(in("A", w));
      p.push_back(in("B", n));
      p.push_back(out("Q", w));
      p.push_back(out("R", n));
      break;
    case Kind::kAdder:
    case Kind::kSubtractor:
      p.push_back(in("A", w));
      p.push_back(in("B", w));
      if (spec.carry_in) p.push_back(in("CI", 1, PortRole::kCarry));
      p.push_back(out("S", w));
      if (spec.carry_out) p.push_back(out("CO", 1, PortRole::kCarry));
      break;
    case Kind::kAddSub:
      p.push_back(in("A", w));
      p.push_back(in("B", w));
      if (spec.carry_in) p.push_back(in("CI", 1, PortRole::kCarry));
      p.push_back(in("MODE", 1, PortRole::kMode));
      p.push_back(out("S", w));
      if (spec.carry_out) p.push_back(out("CO", 1, PortRole::kCarry));
      break;
    case Kind::kCarryLookahead: {
      // 74182-style look-ahead generator: group carries plus group
      // propagate/generate outputs for multi-level look-ahead trees.
      int k = n > 0 ? n : 4;
      p.push_back(in("P", k));
      p.push_back(in("G", k));
      p.push_back(in("CI", 1, PortRole::kCarry));
      p.push_back(out("C", k, PortRole::kCarry));
      p.push_back(out("GP", 1, PortRole::kStatus));
      p.push_back(out("GG", 1, PortRole::kStatus));
      break;
    }
    case Kind::kRegister:
    case Kind::kFlipFlop:
      p.push_back(in("D", w));
      p.push_back(in("CLK", 1, PortRole::kClock));
      if (spec.enable) p.push_back(in("EN", 1, PortRole::kEnable));
      if (spec.async_set) p.push_back(in("ASET", 1, PortRole::kAsync));
      if (spec.async_reset) p.push_back(in("ARST", 1, PortRole::kAsync));
      p.push_back(out("Q", w));
      break;
    case Kind::kRegisterFile:
      p.push_back(in("RA", clog2(n), PortRole::kSelect));
      p.push_back(in("WA", clog2(n), PortRole::kSelect));
      p.push_back(in("WD", w));
      p.push_back(in("WE", 1, PortRole::kEnable));
      p.push_back(in("CLK", 1, PortRole::kClock));
      p.push_back(out("RD", w));
      break;
    case Kind::kCounter:
      // Port names follow the paper's Figure 2 counter generator.
      if (spec.ops.contains(Op::kLoad)) p.push_back(in("I0", w));
      p.push_back(in("CLK", 1, PortRole::kClock));
      if (spec.enable) p.push_back(in("CEN", 1, PortRole::kEnable));
      if (spec.ops.contains(Op::kLoad)) {
        p.push_back(in("CLOAD", 1, PortRole::kControl));
      }
      if (spec.ops.contains(Op::kCountUp)) {
        p.push_back(in("CUP", 1, PortRole::kControl));
      }
      if (spec.ops.contains(Op::kCountDown)) {
        p.push_back(in("CDOWN", 1, PortRole::kControl));
      }
      if (spec.async_set) p.push_back(in("ASET", 1, PortRole::kAsync));
      if (spec.async_reset) p.push_back(in("ARESET", 1, PortRole::kAsync));
      p.push_back(out("O0", w));
      break;
    case Kind::kStack:
    case Kind::kFifo:
      p.push_back(in("DIN", w));
      p.push_back(in("PUSH", 1, PortRole::kControl));
      p.push_back(in("POP", 1, PortRole::kControl));
      p.push_back(in("CLK", 1, PortRole::kClock));
      if (spec.async_reset) p.push_back(in("ARST", 1, PortRole::kAsync));
      p.push_back(out("DOUT", w));
      p.push_back(out("EMPTY", 1, PortRole::kStatus));
      p.push_back(out("FULL", 1, PortRole::kStatus));
      break;
    case Kind::kMemory:
      p.push_back(in("ADDR", clog2(n), PortRole::kSelect));
      p.push_back(in("DIN", w));
      p.push_back(in("WE", 1, PortRole::kEnable));
      p.push_back(in("CLK", 1, PortRole::kClock));
      p.push_back(out("DOUT", w));
      break;
    case Kind::kPort:
    case Kind::kBuffer:
    case Kind::kClockDriver:
    case Kind::kSchmittTrigger:
    case Kind::kDelay:
      p.push_back(in("IN", w));
      p.push_back(out("OUT", w));
      break;
    case Kind::kTristate:
      p.push_back(in("IN", w));
      p.push_back(in("OE", 1, PortRole::kMode));
      p.push_back(out("OUT", w));
      break;
    case Kind::kWiredOr:
    case Kind::kBus: {
      int drivers = n > 0 ? n : 2;
      for (int i = 0; i < drivers; ++i) {
        p.push_back(in("I" + std::to_string(i), w));
      }
      p.push_back(out("OUT", w));
      break;
    }
    case Kind::kConcat:
      p.push_back(in("I0", w));       // high part
      p.push_back(in("I1", n));       // low part
      p.push_back(out("OUT", w + n));
      break;
    case Kind::kExtract:
      p.push_back(in("IN", w));
      p.push_back(out("OUT", n > 0 ? n : 1));  // low `size` bits
      break;
    case Kind::kClockGenerator:
      p.push_back(out("CLK", 1, PortRole::kClock));
      break;
  }
  return p;
}

}  // namespace

std::uint64_t spec_fingerprint(const ComponentSpec& spec) {
  using base::fp_u64;
  std::uint64_t h = base::kFingerprintSeed;
  h = fp_u64(h, static_cast<std::uint64_t>(spec.kind));
  h = fp_u64(h, static_cast<std::uint64_t>(spec.width));
  h = fp_u64(h, static_cast<std::uint64_t>(spec.size));
  h = fp_u64(h, spec.ops.mask());
  h = fp_u64(h, static_cast<std::uint64_t>(spec.style));
  h = fp_u64(h, static_cast<std::uint64_t>(spec.rep));
  const std::uint64_t flags =
      (spec.carry_in ? 1u : 0u) | (spec.carry_out ? 2u : 0u) |
      (spec.enable ? 4u : 0u) | (spec.async_set ? 8u : 0u) |
      (spec.async_reset ? 16u : 0u) | (spec.tristate ? 32u : 0u);
  return fp_u64(h, flags);
}

const std::vector<PortSpec>& spec_ports(const ComponentSpec& spec) {
  // Append-only memo: entries are heap-allocated and never removed, so the
  // returned reference stays valid for the process lifetime. The lock only
  // covers the map probe; port-list construction for a miss runs outside
  // critical use (single-threaded expansion) and rarely enough not to
  // matter.
  struct Cache {
    base::Mutex mu;
    std::unordered_map<ComponentSpec,
                       std::unique_ptr<const std::vector<PortSpec>>>
        map BRIDGE_GUARDED_BY(mu);
  };
  static Cache* cache = new Cache;
  {
    base::LockGuard lock(cache->mu);
    auto it = cache->map.find(spec);
    if (it != cache->map.end()) return *it->second;
  }
  auto built =
      std::make_unique<const std::vector<PortSpec>>(build_spec_ports(spec));
  base::LockGuard lock(cache->mu);
  // emplace keeps the first entry on a lost race; return whichever stayed.
  auto [it, inserted] = cache->map.emplace(spec, std::move(built));
  return *it->second;
}

const PortSpec& find_port(const std::vector<PortSpec>& ports,
                          base::Symbol name) {
  for (const auto& port : ports) {
    if (port.name == name) return port;
  }
  throw Error("no port named '" + name.str() + "'");
}

namespace {

/// True if a cell of kind `cell` can stand in for a need of kind `need`
/// (beyond exact equality) via a port tie-off handled by the matcher.
bool kind_promotes(const ComponentSpec& cell, const ComponentSpec& need) {
  if (cell.kind == Kind::kAddSub && need.kind == Kind::kAdder) return true;
  // AddSub can stand in for a subtractor only when the need has no borrow
  // pins: a constant tie-off cannot invert the borrow sense of CI/CO.
  if (cell.kind == Kind::kAddSub && need.kind == Kind::kSubtractor &&
      !need.carry_in && !need.carry_out) {
    return true;
  }
  if (cell.kind == Kind::kRegister && need.kind == Kind::kFlipFlop) return true;
  if (cell.kind == Kind::kFlipFlop && need.kind == Kind::kRegister) return true;
  return false;
}

}  // namespace

std::vector<Kind> promoting_kinds(Kind need_kind) {
  // Keep in sync with kind_promotes above: every (cell.kind, need.kind)
  // pair it can accept must be listed here, or the bucketed library index
  // would hide legal matches from spec_implements.
  switch (need_kind) {
    case Kind::kAdder:
    case Kind::kSubtractor:
      return {Kind::kAddSub};
    case Kind::kFlipFlop:
      return {Kind::kRegister};
    case Kind::kRegister:
      return {Kind::kFlipFlop};
    default:
      return {};
  }
}

bool spec_implements(const ComponentSpec& cell, const ComponentSpec& need) {
  if (cell.kind != need.kind && !kind_promotes(cell, need)) {
    return false;
  }
  if (cell.width != need.width) return false;
  if (cell.size != need.size) return false;
  // Multi-function components select operations by an F code (the index in
  // OpSet order); a cell with a different operation list would scramble
  // the coding, so those require exact equality. Components with per-op
  // control lines or per-op status pins (counters, comparators) only need
  // coverage — extra controls are tied off, extra outputs left open.
  const bool f_select =
      need.kind == Kind::kAlu || need.kind == Kind::kLogicUnit ||
      need.kind == Kind::kShifter || need.kind == Kind::kBarrelShifter;
  if (f_select && need.ops.size() > 1) {
    if (!(cell.ops == need.ops)) return false;
  } else if (!cell.ops.contains_all(need.ops)) {
    return false;
  }
  if (need.style != Style::kAny && cell.style != Style::kAny &&
      cell.style != need.style) {
    return false;
  }
  if (cell.rep != need.rep) return false;
  // Structural requirements demanded by the need must exist on the cell.
  if (need.carry_in && !cell.carry_in) return false;
  if (need.carry_out && !cell.carry_out) return false;
  if (need.enable && !cell.enable) return false;
  if (need.async_set && !cell.async_set) return false;
  if (need.async_reset && !cell.async_reset) return false;
  if (need.tristate && !cell.tristate) return false;
  return true;
}

bool output_depends_on(const ComponentSpec& spec, base::Symbol out_port,
                       base::Symbol in_port) {
  static const base::Symbol kGP("GP"), kGG("GG"), kCI("CI");
  if (spec.kind == Kind::kCarryLookahead &&
      (out_port == kGP || out_port == kGG)) {
    return in_port != kCI;
  }
  return true;
}

}  // namespace bridge::genus
