#include "genus/param.h"

#include "base/diag.h"

namespace bridge::genus {

const ParamValue* ParamMap::find(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? nullptr : &it->second;
}

long ParamMap::get_int(const std::string& name, long fallback) const {
  const ParamValue* v = find(name);
  if (v == nullptr) return fallback;
  if (const long* i = std::get_if<long>(v)) return *i;
  throw Error("parameter " + name + " is not an integer");
}

bool ParamMap::get_bool(const std::string& name, bool fallback) const {
  const ParamValue* v = find(name);
  if (v == nullptr) return fallback;
  if (const bool* b = std::get_if<bool>(v)) return *b;
  if (const long* i = std::get_if<long>(v)) return *i != 0;
  throw Error("parameter " + name + " is not a flag");
}

std::string ParamMap::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const ParamValue* v = find(name);
  if (v == nullptr) return fallback;
  if (const std::string* s = std::get_if<std::string>(v)) return *s;
  throw Error("parameter " + name + " is not a string");
}

OpSet ParamMap::get_ops(const std::string& name, OpSet fallback) const {
  const ParamValue* v = find(name);
  if (v == nullptr) return fallback;
  if (const OpSet* s = std::get_if<OpSet>(v)) return *s;
  throw Error("parameter " + name + " is not an operation list");
}

Style ParamMap::get_style(const std::string& name, Style fallback) const {
  const ParamValue* v = find(name);
  if (v == nullptr) return fallback;
  if (const Style* s = std::get_if<Style>(v)) return *s;
  if (const std::string* str = std::get_if<std::string>(v)) {
    return style_from_name(*str);
  }
  throw Error("parameter " + name + " is not a style");
}

std::string param_value_to_string(const ParamValue& v) {
  struct Visitor {
    std::string operator()(long i) const { return std::to_string(i); }
    std::string operator()(bool b) const { return b ? "TRUE" : "FALSE"; }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const OpSet& ops) const {
      return "(" + ops.to_string() + ")";
    }
    std::string operator()(Style s) const { return style_name(s); }
  };
  return std::visit(Visitor{}, v);
}

}  // namespace bridge::genus
