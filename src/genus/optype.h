// RTL operation kinds and operation sets.
//
// Every GENUS component and every RTL library cell declares the set of
// micro-operations it can perform (the paper's OPERATIONS attribute, e.g.
// the 16-function ALU performs ADD SUB INC DEC EQ LT GT ZEROP AND OR NAND
// NOR XOR XNOR LNOT LIMPL). DTAS technology mapping matches a component's
// required operation set against the sets offered by library cells.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace bridge::genus {

/// Micro-operation kinds. Order is stable: OpSet packs these as bit indices.
enum class Op : std::uint8_t {
  // Arithmetic
  kAdd,
  kSub,
  kInc,
  kDec,
  kMul,
  kDiv,
  kRem,
  // Comparison / status
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kZerop,  // "is zero" predicate (paper's ZEROP)
  // Bitwise logic
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kLnot,   // logical/bitwise complement of A (paper's LNOT)
  kLimpl,  // logical implication ~A | B (paper's LIMPL)
  kBuf,
  // Shifts / rotates
  kShl,
  kShr,
  kAshr,
  kRotl,
  kRotr,
  // Data movement / storage
  kLoad,
  kPass,
  kCountUp,
  kCountDown,
  kPush,
  kPop,
  kRead,
  kWrite,
  // Structural codecs
  kDecode,
  kEncode,
};

/// Number of distinct Op values (bound for OpSet's bit storage).
inline constexpr int kNumOps = static_cast<int>(Op::kEncode) + 1;
static_assert(kNumOps <= 64, "OpSet packs ops into a 64-bit mask");

/// Data-book style mnemonic ("ADD", "ZEROP", "COUNT_UP", ...).
std::string op_name(Op op);

/// Parse a mnemonic (case-insensitive). Throws Error on unknown name.
Op op_from_name(const std::string& name);

/// True for ops computed by arithmetic circuitry (carry chains).
bool op_is_arithmetic(Op op);

/// True for bitwise-logic ops.
bool op_is_logic(Op op);

/// True for comparison/status ops (single-bit results).
bool op_is_compare(Op op);

/// A set of operations, packed into a 64-bit mask. Cheap value type.
class OpSet {
 public:
  OpSet() = default;
  OpSet(std::initializer_list<Op> ops) {
    for (Op op : ops) insert(op);
  }

  static OpSet from_mask(std::uint64_t mask) {
    OpSet s;
    s.mask_ = mask;
    return s;
  }

  void insert(Op op) { mask_ |= bit(op); }
  void erase(Op op) { mask_ &= ~bit(op); }
  bool contains(Op op) const { return (mask_ & bit(op)) != 0; }
  bool contains_all(OpSet o) const { return (mask_ & o.mask_) == o.mask_; }
  bool intersects(OpSet o) const { return (mask_ & o.mask_) != 0; }
  bool empty() const { return mask_ == 0; }
  int size() const;

  OpSet operator|(OpSet o) const { return from_mask(mask_ | o.mask_); }
  OpSet operator&(OpSet o) const { return from_mask(mask_ & o.mask_); }
  OpSet operator-(OpSet o) const { return from_mask(mask_ & ~o.mask_); }
  bool operator==(const OpSet&) const = default;

  std::uint64_t mask() const { return mask_; }

  /// All members, in enum order.
  std::vector<Op> to_vector() const;

  /// Space-separated mnemonics, e.g. "ADD SUB INC".
  std::string to_string() const;

  /// Parse space-separated mnemonics.
  static OpSet parse(const std::string& text);

 private:
  static std::uint64_t bit(Op op) {
    return std::uint64_t{1} << static_cast<int>(op);
  }
  std::uint64_t mask_ = 0;
};

/// The paper's 16-function ALU operation set (Figure 3).
OpSet alu16_ops();

/// The 8 arithmetic/compare ops of the 16-function ALU.
OpSet alu16_arith_ops();

/// The 8 bitwise-logic ops of the 16-function ALU.
OpSet alu16_logic_ops();

}  // namespace bridge::genus
