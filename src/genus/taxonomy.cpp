#include "genus/taxonomy.h"

namespace bridge::genus {

const std::vector<TaxonomyEntry>& table1_taxonomy() {
  static const std::vector<TaxonomyEntry> kTable = {
      // Combinational
      {TypeClass::kCombinational, "Boolean Gates", {Kind::kGate}},
      {TypeClass::kCombinational, "LU", {Kind::kLogicUnit}},
      {TypeClass::kCombinational, "Mux", {Kind::kMux}},
      {TypeClass::kCombinational, "Selector", {Kind::kSelector}},
      {TypeClass::kCombinational, "Decoder", {Kind::kDecoder}},
      {TypeClass::kCombinational, "Encoder", {Kind::kEncoder}},
      {TypeClass::kCombinational, "Comparator", {Kind::kComparator}},
      {TypeClass::kCombinational, "ALU", {Kind::kAlu}},
      {TypeClass::kCombinational, "Shifter", {Kind::kShifter}},
      {TypeClass::kCombinational, "Barrel Shifter", {Kind::kBarrelShifter}},
      {TypeClass::kCombinational, "Multiplier", {Kind::kMultiplier}},
      {TypeClass::kCombinational, "Divider", {Kind::kDivider}},
      {TypeClass::kCombinational,
       "Adder/Subtractor",
       {Kind::kAdder, Kind::kSubtractor, Kind::kAddSub}},
      // Sequential
      {TypeClass::kSequential, "Register", {Kind::kRegister}},
      {TypeClass::kSequential, "Register File", {Kind::kRegisterFile}},
      {TypeClass::kSequential, "Counter", {Kind::kCounter}},
      {TypeClass::kSequential, "Stack/FIFO", {Kind::kStack, Kind::kFifo}},
      {TypeClass::kSequential, "Memory", {Kind::kMemory}},
      // Interface
      {TypeClass::kInterface, "Port", {Kind::kPort}},
      {TypeClass::kInterface, "Buffer", {Kind::kBuffer}},
      {TypeClass::kInterface, "Clock Driver", {Kind::kClockDriver}},
      {TypeClass::kInterface, "Schmidt Trigger", {Kind::kSchmittTrigger}},
      {TypeClass::kInterface, "Tristate", {Kind::kTristate}},
      {TypeClass::kInterface, "Wired-or", {Kind::kWiredOr}},
      // Miscellaneous
      {TypeClass::kMiscellaneous, "Bus", {Kind::kBus}},
      {TypeClass::kMiscellaneous, "Delay", {Kind::kDelay}},
      {TypeClass::kMiscellaneous, "Switchbox Concat", {Kind::kConcat}},
      {TypeClass::kMiscellaneous, "Switchbox Extract", {Kind::kExtract}},
      {TypeClass::kMiscellaneous, "Clock Generator",
       {Kind::kClockGenerator}},
  };
  return kTable;
}

}  // namespace bridge::genus
