// Component generators — the second level of the GENUS hierarchy.
//
// "A generator class is used to generate a family of similar components and
// instances. LEGEND descriptions are used to maintain lists of all possible
// parameters and definitions for every possible operation performed by a
// generated component." (paper §4)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/widthexpr.h"
#include "genus/component.h"
#include "genus/param.h"

namespace bridge::genus {

/// A declared generator parameter: name, whether it must be supplied, and
/// an optional default ("some parameters are obligatory, others may be
/// assigned a default value").
struct ParamDecl {
  std::string name;
  bool required = false;
  std::optional<ParamValue> default_value;
};

/// A port declaration with a symbolic width, e.g. I0[w] or SEL[log2(n)].
struct GenPortDecl {
  std::string name;
  PortDir dir = PortDir::kIn;
  WidthExpr width = WidthExpr::constant(1);
  PortRole role = PortRole::kData;
};

/// An operation declaration (one entry of the LEGEND OPERATIONS list).
struct GenOperationDecl {
  std::string name;
  std::string control;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::string semantics;
};

/// A generator: produces a family of components from parameter bindings.
class GeneratorSpec {
 public:
  std::string name;              // e.g. "COUNTER"
  Kind kind = Kind::kGate;
  std::string klass;             // LEGEND CLASS attribute, e.g. "Clocked"
  std::vector<ParamDecl> params;
  std::vector<Style> styles;     // allowed GC_STYLE values (empty = any)
  /// Declared ports with symbolic widths. May be empty for built-in
  /// generators, in which case ports are derived from the component spec
  /// via spec_ports().
  std::vector<GenPortDecl> ports;
  /// Declared operations. May be empty, in which case operations are
  /// derived from the spec's operation set with default semantics.
  std::vector<GenOperationDecl> operations;
  std::string vhdl_model;        // behavioral model tag (Figure 2 VHDL_MODEL)
  std::string op_classes = "default";

  /// Generate a component. Applies parameter defaults, rejects missing
  /// obligatory parameters and disallowed styles, resolves symbolic widths,
  /// and names the component from its generator and parameters.
  ComponentPtr generate(const ParamMap& given) const;

  TypeClass type_class() const { return kind_type_class(kind); }
};

/// Derive a ComponentSpec from a generator kind and parameter bindings.
/// This is the canonical meaning of the GC_* parameters.
ComponentSpec spec_from_params(Kind kind, const ParamMap& params);

/// Width-expression bindings available to port declarations of a spec:
/// w (primary width), n (size), f (number of functions).
std::map<std::string, int> width_bindings(const ComponentSpec& spec);

/// Default register-transfer semantics string for an operation of a given
/// spec, e.g. kCountUp -> "O0 = O0 + 1".
std::string default_semantics(Op op, const ComponentSpec& spec);

/// Default operation list for a spec (used when LEGEND declares none).
std::vector<Operation> default_operations(const ComponentSpec& spec);

}  // namespace bridge::genus
