#include "genus/optype.h"

#include <array>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge::genus {

namespace {

struct OpInfo {
  Op op;
  const char* name;
};

constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    {Op::kAdd, "ADD"},
    {Op::kSub, "SUB"},
    {Op::kInc, "INC"},
    {Op::kDec, "DEC"},
    {Op::kMul, "MUL"},
    {Op::kDiv, "DIV"},
    {Op::kRem, "REM"},
    {Op::kEq, "EQ"},
    {Op::kNe, "NE"},
    {Op::kLt, "LT"},
    {Op::kGt, "GT"},
    {Op::kLe, "LE"},
    {Op::kGe, "GE"},
    {Op::kZerop, "ZEROP"},
    {Op::kAnd, "AND"},
    {Op::kOr, "OR"},
    {Op::kNand, "NAND"},
    {Op::kNor, "NOR"},
    {Op::kXor, "XOR"},
    {Op::kXnor, "XNOR"},
    {Op::kLnot, "LNOT"},
    {Op::kLimpl, "LIMPL"},
    {Op::kBuf, "BUF"},
    {Op::kShl, "SHL"},
    {Op::kShr, "SHR"},
    {Op::kAshr, "ASHR"},
    {Op::kRotl, "ROTL"},
    {Op::kRotr, "ROTR"},
    {Op::kLoad, "LOAD"},
    {Op::kPass, "PASS"},
    {Op::kCountUp, "COUNT_UP"},
    {Op::kCountDown, "COUNT_DOWN"},
    {Op::kPush, "PUSH"},
    {Op::kPop, "POP"},
    {Op::kRead, "READ"},
    {Op::kWrite, "WRITE"},
    {Op::kDecode, "DECODE"},
    {Op::kEncode, "ENCODE"},
}};

}  // namespace

std::string op_name(Op op) {
  int idx = static_cast<int>(op);
  BRIDGE_CHECK(idx >= 0 && idx < kNumOps, "bad Op value " << idx);
  BRIDGE_CHECK(kOpTable[idx].op == op, "op table out of order at " << idx);
  return kOpTable[idx].name;
}

Op op_from_name(const std::string& name) {
  std::string upper = to_upper(trim(name));
  for (const auto& info : kOpTable) {
    if (upper == info.name) return info.op;
  }
  throw Error("unknown operation mnemonic '" + name + "'");
}

bool op_is_arithmetic(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kInc:
    case Op::kDec:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kCountUp:
    case Op::kCountDown:
      return true;
    default:
      return false;
  }
}

bool op_is_logic(Op op) {
  switch (op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kNand:
    case Op::kNor:
    case Op::kXor:
    case Op::kXnor:
    case Op::kLnot:
    case Op::kLimpl:
    case Op::kBuf:
      return true;
    default:
      return false;
  }
}

bool op_is_compare(Op op) {
  switch (op) {
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kZerop:
      return true;
    default:
      return false;
  }
}

int OpSet::size() const {
  int n = 0;
  for (std::uint64_t m = mask_; m != 0; m &= m - 1) ++n;
  return n;
}

std::vector<Op> OpSet::to_vector() const {
  std::vector<Op> out;
  for (int i = 0; i < kNumOps; ++i) {
    Op op = static_cast<Op>(i);
    if (contains(op)) out.push_back(op);
  }
  return out;
}

std::string OpSet::to_string() const {
  std::vector<std::string> names;
  for (Op op : to_vector()) names.push_back(op_name(op));
  return join(names, " ");
}

OpSet OpSet::parse(const std::string& text) {
  OpSet s;
  for (const std::string& tok : split_ws(text)) {
    s.insert(op_from_name(tok));
  }
  return s;
}

OpSet alu16_ops() { return alu16_arith_ops() | alu16_logic_ops(); }

OpSet alu16_arith_ops() {
  return OpSet{Op::kAdd, Op::kSub, Op::kInc, Op::kDec,
               Op::kEq,  Op::kLt,  Op::kGt,  Op::kZerop};
}

OpSet alu16_logic_ops() {
  return OpSet{Op::kAnd, Op::kOr,   Op::kNand, Op::kNor,
               Op::kXor, Op::kXnor, Op::kLnot, Op::kLimpl};
}

}  // namespace bridge::genus
