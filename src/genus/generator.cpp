#include "genus/generator.h"

#include <algorithm>
#include <sstream>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge::genus {

namespace {

/// Port names used by default semantics, resolved per kind.
struct SemNames {
  std::string a = "A";
  std::string b = "B";
  std::string out = "OUT";
};

SemNames sem_names(const ComponentSpec& spec) {
  SemNames n;
  switch (spec.kind) {
    case Kind::kAdder:
    case Kind::kSubtractor:
    case Kind::kAddSub:
      n.out = "S";
      break;
    case Kind::kRegister:
    case Kind::kFlipFlop:
      n.a = "D";
      n.out = "Q";
      break;
    case Kind::kCounter:
      n.a = "I0";
      n.out = "O0";
      break;
    case Kind::kMultiplier:
      n.out = "P";
      break;
    case Kind::kShifter:
    case Kind::kBarrelShifter:
    case Kind::kDecoder:
    case Kind::kEncoder:
      n.a = "IN";
      break;
    default:
      break;
  }
  return n;
}

}  // namespace

ComponentSpec spec_from_params(Kind kind, const ParamMap& p) {
  const int w = static_cast<int>(p.get_int(kParamInputWidth, 8));
  ComponentSpec s;
  s.kind = kind;
  s.width = w;
  if (p.get_string(kParamRepresentation, "BINARY") == "BCD") {
    s.rep = Representation::kBcd;
  }
  s.style = p.get_style(kParamStyle, Style::kAny);
  switch (kind) {
    case Kind::kGate:
      s.ops = p.get_ops(kParamFunctionList, OpSet{Op::kAnd});
      s.size = static_cast<int>(p.get_int(kParamFanin, 2));
      if (s.ops.contains(Op::kLnot) || s.ops.contains(Op::kBuf)) s.size = 1;
      break;
    case Kind::kLogicUnit:
      s.ops = p.get_ops(kParamFunctionList,
                        OpSet{Op::kAnd, Op::kOr, Op::kXor, Op::kXnor});
      break;
    case Kind::kMux:
    case Kind::kSelector:
      s.ops = OpSet{Op::kPass};
      s.size = static_cast<int>(p.get_int(kParamNumInputs, 2));
      break;
    case Kind::kDecoder:
      s.ops = OpSet{Op::kDecode};
      s.size = s.rep == Representation::kBcd ? 10 : (1 << w);
      s.enable = p.get_bool(kParamEnableFlag, false);
      break;
    case Kind::kEncoder:
      s.ops = OpSet{Op::kEncode};
      s.size = s.rep == Representation::kBcd ? 10 : (1 << w);
      break;
    case Kind::kComparator:
      s.ops = p.get_ops(kParamFunctionList, OpSet{Op::kEq, Op::kLt, Op::kGt});
      break;
    case Kind::kAlu:
      s.ops = p.get_ops(kParamFunctionList, alu16_ops());
      s.carry_in = p.get_bool(kParamCarryIn, true);
      s.carry_out = p.get_bool(kParamCarryOut, true);
      break;
    case Kind::kShifter:
      s.ops = p.get_ops(kParamFunctionList, OpSet{Op::kShl, Op::kShr});
      break;
    case Kind::kBarrelShifter:
      s.ops = p.get_ops(kParamFunctionList,
                        OpSet{Op::kShl, Op::kShr, Op::kRotl, Op::kRotr});
      s.style = Style::kMuxTree;
      break;
    case Kind::kMultiplier:
      s.ops = OpSet{Op::kMul};
      s.size = static_cast<int>(p.get_int(kParamOutputWidth, 0)) > 0
                   ? static_cast<int>(p.get_int(kParamOutputWidth, 0)) - w
                   : static_cast<int>(p.get_int(kParamSize, w));
      break;
    case Kind::kDivider:
      s.ops = OpSet{Op::kDiv, Op::kRem};
      s.size = static_cast<int>(p.get_int(kParamSize, w));
      break;
    case Kind::kAdder:
      s.ops = OpSet{Op::kAdd};
      s.carry_in = p.get_bool(kParamCarryIn, true);
      s.carry_out = p.get_bool(kParamCarryOut, true);
      break;
    case Kind::kSubtractor:
      s.ops = OpSet{Op::kSub};
      s.carry_in = p.get_bool(kParamCarryIn, false);
      s.carry_out = p.get_bool(kParamCarryOut, false);
      break;
    case Kind::kAddSub:
      s.ops = OpSet{Op::kAdd, Op::kSub};
      s.carry_in = p.get_bool(kParamCarryIn, true);
      s.carry_out = p.get_bool(kParamCarryOut, true);
      break;
    case Kind::kCarryLookahead:
      s.size = static_cast<int>(p.get_int(kParamSize, 4));
      s.width = 1;
      break;
    case Kind::kRegister:
      s.ops = OpSet{Op::kLoad};
      s.enable = p.get_bool(kParamEnableFlag, true);
      s.async_reset = p.get_bool(kParamAsyncReset, true);
      s.async_set = p.get_bool(kParamAsyncSet, false);
      break;
    case Kind::kFlipFlop:
      s.width = 1;
      s.ops = OpSet{Op::kLoad};
      s.enable = p.get_bool(kParamEnableFlag, false);
      s.async_reset = p.get_bool(kParamAsyncReset, false);
      s.async_set = p.get_bool(kParamAsyncSet, false);
      break;
    case Kind::kRegisterFile:
      s.ops = OpSet{Op::kRead, Op::kWrite};
      s.size = static_cast<int>(p.get_int(kParamSize, 16));
      break;
    case Kind::kCounter:
      s.ops = p.get_ops(kParamFunctionList,
                        OpSet{Op::kLoad, Op::kCountUp, Op::kCountDown});
      s.style = p.get_style(kParamStyle, Style::kSynchronous);
      s.enable = p.get_bool(kParamEnableFlag, true);
      s.async_set = p.get_bool(kParamAsyncSet, true);
      s.async_reset = p.get_bool(kParamAsyncReset, true);
      break;
    case Kind::kStack:
    case Kind::kFifo:
      s.ops = OpSet{Op::kPush, Op::kPop};
      s.size = static_cast<int>(p.get_int(kParamSize, 16));
      s.async_reset = p.get_bool(kParamAsyncReset, true);
      break;
    case Kind::kMemory:
      s.ops = OpSet{Op::kRead, Op::kWrite};
      s.size = static_cast<int>(p.get_int(kParamSize, 256));
      break;
    case Kind::kPort:
    case Kind::kBuffer:
    case Kind::kClockDriver:
    case Kind::kSchmittTrigger:
    case Kind::kDelay:
      s.ops = OpSet{Op::kPass};
      break;
    case Kind::kTristate:
      s.ops = OpSet{Op::kPass};
      s.tristate = true;
      break;
    case Kind::kWiredOr:
    case Kind::kBus:
      s.ops = OpSet{Op::kPass};
      s.size = static_cast<int>(p.get_int(kParamNumInputs, 2));
      break;
    case Kind::kConcat:
      s.ops = OpSet{Op::kPass};
      s.size = static_cast<int>(p.get_int(kParamSize, w));
      break;
    case Kind::kExtract:
      s.ops = OpSet{Op::kPass};
      s.size = static_cast<int>(p.get_int(kParamOutputWidth, 1));
      break;
    case Kind::kClockGenerator:
      s.width = 1;
      break;
  }
  return s;
}

std::map<std::string, int> width_bindings(const ComponentSpec& spec) {
  std::map<std::string, int> b;
  b["w"] = spec.width;
  b["n"] = spec.size > 0 ? spec.size : 1;
  b["f"] = std::max(1, spec.ops.size());
  return b;
}

std::string default_semantics(Op op, const ComponentSpec& spec) {
  const SemNames nm = sem_names(spec);
  const std::string& A = nm.a;
  const std::string& B = nm.b;
  const std::string& O = nm.out;
  switch (op) {
    case Op::kAdd:
      return O + " = " + A + " + " + B + (spec.carry_in ? " + CI" : "");
    case Op::kSub:
      return O + " = " + A + " - " + B;
    case Op::kInc:
      return O + " = " + A + " + 1";
    case Op::kDec:
      return O + " = " + A + " - 1";
    case Op::kMul:
      return O + " = " + A + " * " + B;
    case Op::kDiv:
      return "Q = " + A + " / " + B;
    case Op::kRem:
      return "R = " + A + " % " + B;
    case Op::kEq:
      return O + " = (" + A + " == " + B + ")";
    case Op::kNe:
      return O + " = (" + A + " != " + B + ")";
    case Op::kLt:
      return O + " = (" + A + " < " + B + ")";
    case Op::kGt:
      return O + " = (" + A + " > " + B + ")";
    case Op::kLe:
      return O + " = (" + A + " <= " + B + ")";
    case Op::kGe:
      return O + " = (" + A + " >= " + B + ")";
    case Op::kZerop:
      return O + " = (" + A + " == 0)";
    case Op::kAnd:
      return O + " = " + A + " & " + B;
    case Op::kOr:
      return O + " = " + A + " | " + B;
    case Op::kNand:
      return O + " = ~(" + A + " & " + B + ")";
    case Op::kNor:
      return O + " = ~(" + A + " | " + B + ")";
    case Op::kXor:
      return O + " = " + A + " ^ " + B;
    case Op::kXnor:
      return O + " = ~(" + A + " ^ " + B + ")";
    case Op::kLnot:
      return O + " = ~" + A;
    case Op::kLimpl:
      return O + " = ~" + A + " | " + B;
    case Op::kBuf:
      return O + " = " + A;
    case Op::kShl:
      return O + " = " + A + " << " +
             (spec.kind == Kind::kBarrelShifter ? "AMT" : "1");
    case Op::kShr:
      return O + " = " + A + " >> " +
             (spec.kind == Kind::kBarrelShifter ? "AMT" : "1");
    case Op::kAshr:
      return O + " = " + A + " >>> " +
             (spec.kind == Kind::kBarrelShifter ? "AMT" : "1");
    case Op::kRotl:
      return O + " = rotl(" + A +
             (spec.kind == Kind::kBarrelShifter ? ", AMT)" : ", 1)");
    case Op::kRotr:
      return O + " = rotr(" + A +
             (spec.kind == Kind::kBarrelShifter ? ", AMT)" : ", 1)");
    case Op::kLoad:
      return O + " = " + A;
    case Op::kPass:
      return O + " = " + (spec.kind == Kind::kMux ? "I[SEL]" : "IN");
    case Op::kCountUp:
      return O + " = " + O + " + 1";
    case Op::kCountDown:
      return O + " = " + O + " - 1";
    case Op::kPush:
      return "push(DIN)";
    case Op::kPop:
      return "DOUT = pop()";
    case Op::kRead:
      return "DOUT = mem[ADDR]";
    case Op::kWrite:
      return "mem[ADDR] = DIN";
    case Op::kDecode:
      return "OUT = 1 << IN";
    case Op::kEncode:
      return "OUT = priority(IN)";
  }
  throw Error("no default semantics for op");
}

std::vector<Operation> default_operations(const ComponentSpec& spec) {
  std::vector<Operation> ops;
  const auto ports = spec_ports(spec);
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  for (const auto& port : ports) {
    if (port.role == PortRole::kData || port.role == PortRole::kCarry) {
      if (port.dir == PortDir::kIn) {
        input_names.push_back(port.name);
      } else {
        output_names.push_back(port.name);
      }
    }
  }
  for (Op op : spec.ops.to_vector()) {
    Operation o;
    o.name = op_name(op);
    o.inputs = input_names;
    o.outputs = output_names;
    o.semantics = default_semantics(op, spec);
    // Counters trigger operations from dedicated control lines (Figure 2);
    // multi-function combinational components use the F select encoding.
    if (spec.kind == Kind::kCounter) {
      if (op == Op::kLoad) o.control = "CLOAD";
      if (op == Op::kCountUp) o.control = "CUP";
      if (op == Op::kCountDown) o.control = "CDOWN";
    }
    ops.push_back(std::move(o));
  }
  return ops;
}

ComponentPtr GeneratorSpec::generate(const ParamMap& given) const {
  // Merge defaults; verify obligatory parameters.
  ParamMap merged = given;
  for (const ParamDecl& decl : params) {
    if (!merged.has(decl.name)) {
      if (decl.required) {
        throw Error("generator " + name + ": obligatory parameter " +
                    decl.name + " not supplied");
      }
      if (decl.default_value.has_value()) {
        merged.set(decl.name, *decl.default_value);
      }
    }
  }

  ComponentSpec spec = spec_from_params(kind, merged);

  if (!styles.empty() && spec.style != Style::kAny &&
      std::find(styles.begin(), styles.end(), spec.style) == styles.end()) {
    throw Error("generator " + name + ": style " + style_name(spec.style) +
                " not offered (NUM_STYLES list)");
  }

  // Resolve ports: declared symbolic ports if present, else spec-derived.
  std::vector<PortSpec> resolved;
  if (ports.empty()) {
    resolved = spec_ports(spec);
  } else {
    const auto bindings = width_bindings(spec);
    resolved.reserve(ports.size());
    for (const GenPortDecl& decl : ports) {
      resolved.push_back(PortSpec{decl.name, decl.dir,
                                  decl.width.eval(bindings), decl.role});
    }
  }

  // Resolve operations.
  std::vector<Operation> resolved_ops;
  if (operations.empty()) {
    resolved_ops = default_operations(spec);
  } else {
    resolved_ops.reserve(operations.size());
    for (const GenOperationDecl& decl : operations) {
      resolved_ops.push_back(Operation{decl.name, decl.control, decl.inputs,
                                       decl.outputs, decl.semantics});
    }
  }

  std::string comp_name =
      merged.get_string(kParamCompilerName, name + "." + spec.key());

  return std::make_shared<Component>(std::move(comp_name), std::move(spec),
                                     std::move(resolved), std::move(resolved_ops),
                                     name, std::move(merged));
}

}  // namespace bridge::genus
