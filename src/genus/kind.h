// Component kinds and GENUS type classes.
//
// A GENUS library is organized as a hierarchy of types -> generators ->
// components -> instances (paper §4). The *type class* describes abstract
// functionality: combinational, sequential, interface, miscellaneous.
// Kind identifies the component family a generator produces (Table 1).
#pragma once

#include <string>
#include <vector>

namespace bridge::genus {

/// GENUS type classes (paper §4: "Sample type attributes include
/// combinatorial, sequential, interface, and miscellaneous").
enum class TypeClass : std::uint8_t {
  kCombinational,
  kSequential,
  kInterface,
  kMiscellaneous,
};

std::string type_class_name(TypeClass tc);

/// Component families from Table 1 plus the cells DTAS needs for
/// technology mapping (e.g. carry-look-ahead generators, D flip-flops).
enum class Kind : std::uint8_t {
  // Combinational (Table 1, left column)
  kGate,          // bitwise Boolean gates (AND/OR/NAND/NOR/XOR/XNOR/NOT/BUF)
  kLogicUnit,     // LU: multi-function bitwise logic
  kMux,           // binary-select multiplexer
  kSelector,      // one-hot select multiplexer
  kDecoder,
  kEncoder,
  kComparator,
  kAlu,
  kShifter,       // shift-by-one, function-selected
  kBarrelShifter, // shift-by-k, amount input
  kMultiplier,
  kDivider,
  kAdder,
  kSubtractor,
  kAddSub,        // adder/subtractor with mode input
  kCarryLookahead,  // CLA generator block (library support cell)
  // Sequential (Table 1, right column)
  kRegister,
  kRegisterFile,
  kCounter,
  kStack,
  kFifo,
  kMemory,
  kFlipFlop,      // single D flip-flop (library support cell)
  // Interface
  kPort,
  kBuffer,
  kClockDriver,
  kSchmittTrigger,
  kTristate,
  kWiredOr,
  // Miscellaneous
  kBus,
  kDelay,
  kConcat,        // switchbox concat
  kExtract,       // switchbox extract
  kClockGenerator,
};

inline constexpr int kNumKinds = static_cast<int>(Kind::kClockGenerator) + 1;

/// Data-book style name ("ALU", "COUNTER", "BARREL_SHIFTER", ...).
std::string kind_name(Kind kind);

/// Parse a kind name (case-insensitive). Throws Error on unknown name.
Kind kind_from_name(const std::string& name);

/// The GENUS type class a kind belongs to.
TypeClass kind_type_class(Kind kind);

/// True if components of this kind hold state across clock edges.
bool kind_is_sequential(Kind kind);

/// All kinds, in declaration order (for taxonomy iteration).
std::vector<Kind> all_kinds();

}  // namespace bridge::genus
