// GENUS libraries: named collections of component generators.
//
// "GENUS is a framework for maintaining and accessing libraries of generic
// RTL components." (paper §4). A library holds generators keyed by name;
// components are generated on demand and cached so that repeated requests
// yield the same shared component (instances are then carbon copies).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "genus/generator.h"

namespace bridge::genus {

class GenusLibrary {
 public:
  explicit GenusLibrary(std::string name = "GENUS") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Register a generator; replaces any previous generator of the same name
  /// (LEGEND "customization of existing libraries").
  void add(GeneratorSpec generator);

  bool has(const std::string& generator_name) const;

  /// Lookup; throws Error when the generator is unknown.
  const GeneratorSpec& find(const std::string& generator_name) const;

  /// All generator names in registration order.
  std::vector<std::string> generator_names() const;

  /// Generate (or fetch the cached) component for the given parameters.
  ComponentPtr instantiate(const std::string& generator_name,
                           const ParamMap& params) const;

  /// Convenience: instantiate by kind using the built-in generator names.
  ComponentPtr instantiate(Kind kind, const ParamMap& params) const;

  /// Create a named instance (carbon copy) of a component.
  static ComponentInstance make_instance(std::string instance_name,
                                         ComponentPtr component);

  int size() const { return static_cast<int>(order_.size()); }

 private:
  std::string name_;
  std::map<std::string, GeneratorSpec> generators_;
  std::vector<std::string> order_;
  mutable std::map<std::string, ComponentPtr> component_cache_;
};

/// The standard built-in GENUS library: one generator per Table 1 entry
/// (plus the DFF/CLA support generators used in technology mapping).
const GenusLibrary& builtin_library();

}  // namespace bridge::genus
