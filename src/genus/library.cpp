#include "genus/library.h"

#include <sstream>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge::genus {

void GenusLibrary::add(GeneratorSpec generator) {
  const std::string key = generator.name;
  if (generators_.find(key) == generators_.end()) {
    order_.push_back(key);
  }
  generators_.insert_or_assign(key, std::move(generator));
}

bool GenusLibrary::has(const std::string& generator_name) const {
  return generators_.count(generator_name) != 0;
}

const GeneratorSpec& GenusLibrary::find(const std::string& generator_name) const {
  auto it = generators_.find(generator_name);
  if (it == generators_.end()) {
    throw Error("library " + name_ + " has no generator '" + generator_name +
                "'");
  }
  return it->second;
}

std::vector<std::string> GenusLibrary::generator_names() const {
  return order_;
}

ComponentPtr GenusLibrary::instantiate(const std::string& generator_name,
                                       const ParamMap& params) const {
  const GeneratorSpec& gen = find(generator_name);
  // Cache key: generator plus the full parameter binding.
  std::ostringstream key;
  key << generator_name;
  for (const auto& [pname, pvalue] : params.values()) {
    key << ";" << pname << "=" << param_value_to_string(pvalue);
  }
  auto it = component_cache_.find(key.str());
  if (it != component_cache_.end()) return it->second;
  ComponentPtr comp = gen.generate(params);
  component_cache_.emplace(key.str(), comp);
  return comp;
}

ComponentPtr GenusLibrary::instantiate(Kind kind, const ParamMap& params) const {
  return instantiate(kind_name(kind), params);
}

ComponentInstance GenusLibrary::make_instance(std::string instance_name,
                                              ComponentPtr component) {
  BRIDGE_CHECK(component != nullptr, "instance of null component");
  ComponentInstance inst;
  inst.name = std::move(instance_name);
  inst.component = std::move(component);
  return inst;
}

namespace {

GeneratorSpec make_builtin_generator(Kind kind) {
  GeneratorSpec gen;
  gen.name = kind_name(kind);
  gen.kind = kind;
  switch (kind_type_class(kind)) {
    case TypeClass::kCombinational:
      gen.klass = "Combinational";
      break;
    case TypeClass::kSequential:
      gen.klass = "Clocked";
      break;
    case TypeClass::kInterface:
      gen.klass = "Interface";
      break;
    case TypeClass::kMiscellaneous:
      gen.klass = "Miscellaneous";
      break;
  }
  gen.vhdl_model = to_lower(gen.name) + "_vhdl.c";

  auto opt_int = [](const char* name, long v) {
    return ParamDecl{name, false, ParamValue{v}};
  };
  auto optional = [](const char* name) {
    return ParamDecl{name, false, std::nullopt};
  };

  gen.params.push_back(optional(kParamCompilerName));
  gen.params.push_back(opt_int(kParamInputWidth, 8));
  gen.params.push_back(optional(kParamFunctionList));
  gen.params.push_back(optional(kParamStyle));
  switch (kind) {
    case Kind::kGate:
      gen.params.push_back(opt_int(kParamFanin, 2));
      break;
    case Kind::kMux:
    case Kind::kSelector:
    case Kind::kWiredOr:
    case Kind::kBus:
      gen.params.push_back(opt_int(kParamNumInputs, 2));
      break;
    case Kind::kMultiplier:
    case Kind::kDivider:
    case Kind::kRegisterFile:
    case Kind::kStack:
    case Kind::kFifo:
    case Kind::kMemory:
    case Kind::kCarryLookahead:
    case Kind::kConcat:
      gen.params.push_back(optional(kParamSize));
      break;
    case Kind::kExtract:
      gen.params.push_back(opt_int(kParamOutputWidth, 1));
      break;
    case Kind::kAdder:
    case Kind::kSubtractor:
    case Kind::kAddSub:
    case Kind::kAlu:
      gen.params.push_back(optional(kParamCarryIn));
      gen.params.push_back(optional(kParamCarryOut));
      break;
    case Kind::kRegister:
    case Kind::kFlipFlop:
    case Kind::kCounter:
      gen.params.push_back(optional(kParamEnableFlag));
      gen.params.push_back(optional(kParamAsyncSet));
      gen.params.push_back(optional(kParamAsyncReset));
      gen.params.push_back(optional(kParamSetValue));
      break;
    case Kind::kDecoder:
    case Kind::kEncoder:
      gen.params.push_back(optional(kParamRepresentation));
      gen.params.push_back(optional(kParamEnableFlag));
      break;
    default:
      break;
  }

  // Style menus (the Figure 2 counter offers SYNCHRONOUS and RIPPLE).
  switch (kind) {
    case Kind::kCounter:
      gen.styles = {Style::kSynchronous, Style::kRipple};
      break;
    case Kind::kAdder:
    case Kind::kAddSub:
    case Kind::kAlu:
      gen.styles = {Style::kRipple, Style::kCarryLookahead,
                    Style::kCarrySelect};
      break;
    default:
      break;
  }
  return gen;
}

}  // namespace

const GenusLibrary& builtin_library() {
  static const GenusLibrary lib = [] {
    GenusLibrary l("GENUS");
    for (Kind kind : all_kinds()) {
      l.add(make_builtin_generator(kind));
    }
    return l;
  }();
  return lib;
}

}  // namespace bridge::genus
