// Table 1 of the paper: "Typical LEGEND/GENUS Generic Components".
//
// The taxonomy drives the Table 1 reproduction bench: every row must be
// instantiable through the built-in GENUS library.
#pragma once

#include <string>
#include <vector>

#include "genus/kind.h"

namespace bridge::genus {

/// One Table 1 entry: a display name and the kinds it covers (the table
/// groups "Stack/FIFO" and "Adder/Subtractor" as single rows).
struct TaxonomyEntry {
  TypeClass type_class;
  std::string display_name;
  std::vector<Kind> kinds;
};

/// The rows of Table 1, in the paper's order.
const std::vector<TaxonomyEntry>& table1_taxonomy();

}  // namespace bridge::genus
