#include "genus/kind.h"

#include <array>

#include "base/diag.h"
#include "base/strutil.h"

namespace bridge::genus {

namespace {

struct KindInfo {
  Kind kind;
  const char* name;
  TypeClass type_class;
};

constexpr std::array<KindInfo, kNumKinds> kKindTable = {{
    {Kind::kGate, "GATE", TypeClass::kCombinational},
    {Kind::kLogicUnit, "LU", TypeClass::kCombinational},
    {Kind::kMux, "MUX", TypeClass::kCombinational},
    {Kind::kSelector, "SELECTOR", TypeClass::kCombinational},
    {Kind::kDecoder, "DECODER", TypeClass::kCombinational},
    {Kind::kEncoder, "ENCODER", TypeClass::kCombinational},
    {Kind::kComparator, "COMPARATOR", TypeClass::kCombinational},
    {Kind::kAlu, "ALU", TypeClass::kCombinational},
    {Kind::kShifter, "SHIFTER", TypeClass::kCombinational},
    {Kind::kBarrelShifter, "BARREL_SHIFTER", TypeClass::kCombinational},
    {Kind::kMultiplier, "MULTIPLIER", TypeClass::kCombinational},
    {Kind::kDivider, "DIVIDER", TypeClass::kCombinational},
    {Kind::kAdder, "ADDER", TypeClass::kCombinational},
    {Kind::kSubtractor, "SUBTRACTOR", TypeClass::kCombinational},
    {Kind::kAddSub, "ADDSUB", TypeClass::kCombinational},
    {Kind::kCarryLookahead, "CLA", TypeClass::kCombinational},
    {Kind::kRegister, "REGISTER", TypeClass::kSequential},
    {Kind::kRegisterFile, "REGISTER_FILE", TypeClass::kSequential},
    {Kind::kCounter, "COUNTER", TypeClass::kSequential},
    {Kind::kStack, "STACK", TypeClass::kSequential},
    {Kind::kFifo, "FIFO", TypeClass::kSequential},
    {Kind::kMemory, "MEMORY", TypeClass::kSequential},
    {Kind::kFlipFlop, "DFF", TypeClass::kSequential},
    {Kind::kPort, "PORT", TypeClass::kInterface},
    {Kind::kBuffer, "BUFFER", TypeClass::kInterface},
    {Kind::kClockDriver, "CLOCK_DRIVER", TypeClass::kInterface},
    {Kind::kSchmittTrigger, "SCHMITT_TRIGGER", TypeClass::kInterface},
    {Kind::kTristate, "TRISTATE", TypeClass::kInterface},
    {Kind::kWiredOr, "WIRED_OR", TypeClass::kInterface},
    {Kind::kBus, "BUS", TypeClass::kMiscellaneous},
    {Kind::kDelay, "DELAY", TypeClass::kMiscellaneous},
    {Kind::kConcat, "CONCAT", TypeClass::kMiscellaneous},
    {Kind::kExtract, "EXTRACT", TypeClass::kMiscellaneous},
    {Kind::kClockGenerator, "CLOCK_GENERATOR", TypeClass::kMiscellaneous},
}};

const KindInfo& info_for(Kind kind) {
  int idx = static_cast<int>(kind);
  BRIDGE_CHECK(idx >= 0 && idx < kNumKinds, "bad Kind value " << idx);
  BRIDGE_CHECK(kKindTable[idx].kind == kind, "kind table out of order");
  return kKindTable[idx];
}

}  // namespace

std::string type_class_name(TypeClass tc) {
  switch (tc) {
    case TypeClass::kCombinational:
      return "Combinational";
    case TypeClass::kSequential:
      return "Sequential";
    case TypeClass::kInterface:
      return "Interface";
    case TypeClass::kMiscellaneous:
      return "Miscellaneous";
  }
  throw Error("bad TypeClass value");
}

std::string kind_name(Kind kind) { return info_for(kind).name; }

Kind kind_from_name(const std::string& name) {
  std::string upper = to_upper(trim(name));
  for (const auto& info : kKindTable) {
    if (upper == info.name) return info.kind;
  }
  // Friendly aliases found in data books and the paper's prose.
  if (upper == "ADD") return Kind::kAdder;
  if (upper == "SUBTRACT" || upper == "SUB") return Kind::kSubtractor;
  if (upper == "ADDER/SUBTRACTOR") return Kind::kAddSub;
  if (upper == "MULT") return Kind::kMultiplier;
  if (upper == "REG") return Kind::kRegister;
  if (upper == "D_FLIP_FLOP" || upper == "FLIP_FLOP") return Kind::kFlipFlop;
  throw Error("unknown component kind '" + name + "'");
}

TypeClass kind_type_class(Kind kind) { return info_for(kind).type_class; }

bool kind_is_sequential(Kind kind) {
  return kind_type_class(kind) == TypeClass::kSequential;
}

std::vector<Kind> all_kinds() {
  std::vector<Kind> out;
  out.reserve(kNumKinds);
  for (const auto& info : kKindTable) out.push_back(info.kind);
  return out;
}

}  // namespace bridge::genus
