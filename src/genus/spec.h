// Functional component specifications.
//
// The paper's pivotal idea (§5): "Technology mapping is performed using the
// functional specification of library cells, as opposed to a DAG description
// of their Boolean behavior. The functionality of library cells, i.e., their
// type, bit-width, and other characteristics, is described with the same
// representation language used in recognizing and decomposing GENUS
// components."
//
// ComponentSpec is that shared representation. GENUS generators produce
// components whose functionality is a ComponentSpec; RTL library cells carry
// a ComponentSpec; DTAS decomposition rules rewrite ComponentSpecs; and the
// functional matcher compares them directly — avoiding subgraph isomorphism.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "base/symbol.h"
#include "genus/kind.h"
#include "genus/optype.h"

namespace bridge::genus {

/// Implementation style of a component (GC_STYLE parameter).
enum class Style : std::uint8_t {
  kAny,             // unconstrained (specification side)
  kRipple,          // ripple carry / ripple clock
  kCarryLookahead,  // CLA-accelerated carry
  kCarrySelect,
  kSynchronous,     // synchronous (counters)
  kMuxTree,         // mux/selector trees, logarithmic shifters
  kArray,           // array multiplier
};

std::string style_name(Style s);
Style style_from_name(const std::string& name);

/// Number representation (GC_REPRESENTATION parameter).
enum class Representation : std::uint8_t {
  kBinary,  // unsigned / two's-complement binary
  kBcd,     // binary-coded decimal
};

std::string representation_name(Representation r);

/// Port roles, used to derive connectivity, simulation semantics, and VHDL.
enum class PortRole : std::uint8_t {
  kData,     // operand / result buses
  kSelect,   // mux/function select
  kControl,  // per-operation control lines (counters etc.)
  kCarry,    // carry in/out
  kStatus,   // single-bit status outputs (EQ, LT, overflow, empty/full)
  kClock,
  kEnable,
  kAsync,    // asynchronous set/reset
  kMode,     // add/subtract mode, direction, output-enable
};

enum class PortDir : std::uint8_t { kIn, kOut };

/// A resolved (concrete-width) port of a component or cell. The name is an
/// interned symbol: port lists are built once per distinct specification
/// (see spec_ports) and then compared/copied everywhere, so lookups are
/// pointer compares and copies never allocate.
struct PortSpec {
  base::Symbol name;
  PortDir dir = PortDir::kIn;
  int width = 1;
  PortRole role = PortRole::kData;

  bool operator==(const PortSpec&) const = default;
};

/// The functional specification of a component or library cell.
struct ComponentSpec {
  Kind kind = Kind::kGate;
  /// Primary bit-width: operand width for arithmetic, data width for
  /// muxes/registers, input width for decoders, output width for encoders.
  int width = 1;
  /// Secondary size: number of data inputs for mux/selector/gate fan-in,
  /// second operand width for multipliers/dividers, word count for
  /// register files / memories / stacks / FIFOs, output count for
  /// decoders, input count for encoders. 0 when not applicable.
  int size = 0;
  /// Operations the component must perform / the cell can perform.
  OpSet ops;
  Style style = Style::kAny;
  Representation rep = Representation::kBinary;
  // Optional structural capabilities / requirements.
  bool carry_in = false;
  bool carry_out = false;
  bool enable = false;
  bool async_set = false;
  bool async_reset = false;
  bool tristate = false;

  bool operator==(const ComponentSpec&) const = default;

  /// Canonical key, e.g. "ADDER.w16.ci.co[ADD]". Memoization and printing.
  std::string key() const;

  /// Short human-readable description for reports.
  std::string pretty() const;

  /// Width of a function-select input needed to choose among the data ops
  /// (e.g. 4 for the 16-function ALU; the paper's "S-4" port).
  int select_width() const;
};

/// Convenience constructors for the common specification shapes.
ComponentSpec make_gate_spec(Op fn, int width, int fanin = 2);
ComponentSpec make_adder_spec(int width, bool carry_in = true,
                              bool carry_out = true);
ComponentSpec make_subtractor_spec(int width);
ComponentSpec make_addsub_spec(int width);
ComponentSpec make_alu_spec(int width, OpSet ops);
ComponentSpec make_mux_spec(int width, int num_inputs);
ComponentSpec make_register_spec(int width, bool enable = true,
                                 bool async_reset = true);
ComponentSpec make_counter_spec(int width, OpSet ops,
                                Style style = Style::kSynchronous);
ComponentSpec make_comparator_spec(int width, OpSet ops);
ComponentSpec make_decoder_spec(int input_width,
                                Representation rep = Representation::kBinary);
ComponentSpec make_encoder_spec(int output_width,
                                Representation rep = Representation::kBinary);
ComponentSpec make_shifter_spec(int width, OpSet ops);
ComponentSpec make_barrel_shifter_spec(int width, OpSet ops);
ComponentSpec make_multiplier_spec(int width_a, int width_b);
ComponentSpec make_logic_unit_spec(int width, OpSet ops);

/// Stable 64-bit content fingerprint of a specification: covers every field
/// (kind, geometry, op set, style, representation, structural flags) via the
/// fixed algorithm in base/fingerprint.h, so the value is identical across
/// processes and runs — unlike std::hash, which may be salted. This is the
/// spec component of the delta-aware cache keys in src/dtas and of
/// cells::CellLibrary content fingerprints.
std::uint64_t spec_fingerprint(const ComponentSpec& spec);

/// Derive the full port list of a specification. This is the single source
/// of truth used by netlist construction, simulation, and VHDL emission.
/// Memoized per distinct specification: the returned reference points into
/// a process-wide, append-only cache (stable for the process lifetime), so
/// hot paths iterate it without copying and repeated calls never re-run
/// the port-name string assembly.
const std::vector<PortSpec>& spec_ports(const ComponentSpec& spec);

/// Find a port by name; throws Error if absent.
const PortSpec& find_port(const std::vector<PortSpec>& ports,
                          base::Symbol name);

/// True if `cell` can directly implement `need`: same kind family and
/// geometry, cell's operation set covers the needed one, and every
/// structural requirement (carries, enables, asyncs) that `need` demands is
/// provided by `cell`. Extra cell capabilities are allowed (tie-offs).
bool spec_implements(const ComponentSpec& cell, const ComponentSpec& need);

/// Cell kinds other than `need_kind` itself whose cells may implement a
/// need of kind `need_kind` (a superset of what spec_implements accepts;
/// the precise check still runs per cell). This is the index contract of
/// cells::CellLibrary::matches: a (kind, width) bucket lookup over
/// `need_kind` plus these kinds must see every possible match, because
/// spec_implements requires exact width equality and rejects every other
/// kind pairing.
std::vector<Kind> promoting_kinds(Kind need_kind);

/// Structural false-path knowledge: whether `out_port` combinationally
/// depends on `in_port`. Almost always true; the notable exception is the
/// carry-look-ahead generator, whose group propagate/generate outputs do
/// not depend on the carry input — which is precisely what makes
/// multi-level look-ahead trees acyclic.
bool output_depends_on(const ComponentSpec& spec, base::Symbol out_port,
                       base::Symbol in_port);

}  // namespace bridge::genus

namespace std {
template <>
struct hash<bridge::genus::ComponentSpec> {
  size_t operator()(const bridge::genus::ComponentSpec& s) const noexcept {
    size_t h = std::hash<int>()(static_cast<int>(s.kind));
    auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(std::hash<int>()(s.width));
    mix(std::hash<int>()(s.size));
    mix(std::hash<unsigned long long>()(s.ops.mask()));
    mix(std::hash<int>()(static_cast<int>(s.style)));
    mix(std::hash<int>()(static_cast<int>(s.rep)));
    int flags = (s.carry_in << 0) | (s.carry_out << 1) | (s.enable << 2) |
                (s.async_set << 3) | (s.async_reset << 4) | (s.tristate << 5);
    mix(std::hash<int>()(flags));
    return h;
  }
};
}  // namespace std
