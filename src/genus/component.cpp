#include "genus/component.h"

#include "base/diag.h"

namespace bridge::genus {

void ComponentInstance::connect(const std::string& port,
                                const std::string& net) {
  BRIDGE_CHECK(component != nullptr, "instance '" << name
                                                  << "' has no component");
  component->port(port);  // throws if absent
  connections[port] = net;
}

}  // namespace bridge::genus
