#include "vhdl/vhdl.h"

#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "base/diag.h"
#include "base/strutil.h"
#include "obs/trace.h"

namespace bridge::vhdl {

using genus::PortDir;
using genus::PortSpec;
using netlist::Instance;
using netlist::Module;
using netlist::PortConn;

namespace {

std::string bus_type(int width) {
  if (width == 1) return "std_logic";
  return "std_logic_vector(" + std::to_string(width - 1) + " downto 0)";
}

std::string bit_literal(std::uint64_t value, int width) {
  if (width == 1) return std::string("'") + ((value & 1) ? "1" : "0") + "'";
  std::string bits;
  for (int b = width - 1; b >= 0; --b) {
    bits.push_back(((value >> b) & 1) ? '1' : '0');
  }
  return "\"" + bits + "\"";
}

std::string slice_ref(const std::string& net, int net_width, int lo,
                      int width) {
  if (net_width == 1) return net;
  if (width == 1) return net + "(" + std::to_string(lo) + ")";
  return net + "(" + std::to_string(lo + width - 1) + " downto " +
         std::to_string(lo) + ")";
}

void emit_entity(std::ostringstream& os, const std::string& name,
                 const std::vector<PortSpec>& ports) {
  os << "entity " << name << " is\n  port (\n";
  for (size_t i = 0; i < ports.size(); ++i) {
    const PortSpec& p = ports[i];
    os << "    " << sanitize_identifier(p.name) << " : "
       << (p.dir == PortDir::kIn ? "in " : "out ") << bus_type(p.width)
       << (i + 1 == ports.size() ? ");" : ";") << "\n";
  }
  os << "end entity " << name << ";\n\n";
}

std::vector<PortSpec> module_port_specs(const Module& m) {
  std::vector<PortSpec> ports;
  for (const auto& p : m.module_ports()) {
    ports.push_back(PortSpec{p.name, p.dir, p.width, genus::PortRole::kData});
  }
  return ports;
}

void emit_module(std::ostringstream& os, const Module& m) {
  const std::string name = sanitize_identifier(m.name());
  emit_entity(os, name, module_port_specs(m));

  os << "architecture structural of " << name << " is\n";

  // Component declarations for each distinct reference.
  std::set<std::string> declared;
  for (const Instance& inst : m.instances()) {
    const std::string ref = sanitize_identifier(inst.ref_name);
    if (!declared.insert(ref).second) continue;
    os << "  component " << ref << "\n    port (\n";
    const auto ports = Module::instance_ports(inst);
    for (size_t i = 0; i < ports.size(); ++i) {
      const PortSpec& p = ports[i];
      os << "      " << sanitize_identifier(p.name) << " : "
         << (p.dir == PortDir::kIn ? "in " : "out ") << bus_type(p.width)
         << (i + 1 == ports.size() ? ");" : ";") << "\n";
    }
    os << "  end component;\n";
  }

  // Internal signals: every net that is not a module port.
  std::set<std::string> port_nets;
  for (const auto& p : m.module_ports()) port_nets.insert(p.name);
  for (const auto& n : m.nets()) {
    if (port_nets.count(n.name)) continue;
    os << "  signal " << sanitize_identifier(n.name) << " : "
       << bus_type(n.width) << ";\n";
  }

  // Helper signals for constants and replication.
  int helper = 0;
  std::ostringstream helper_decls;
  std::ostringstream helper_assigns;
  std::ostringstream body;
  for (const Instance& inst : m.instances()) {
    body << "  " << sanitize_identifier(inst.name) << " : "
         << sanitize_identifier(inst.ref_name) << "\n    port map (\n";
    const auto ports = Module::instance_ports(inst);
    std::vector<std::string> bindings;
    for (const PortSpec& p : ports) {
      auto it = inst.connections.find(p.name);
      if (it == inst.connections.end() ||
          it->second.kind == PortConn::Kind::kOpen) {
        if (p.dir == PortDir::kOut) {
          bindings.push_back(sanitize_identifier(p.name) + " => open");
        }
        continue;
      }
      const PortConn& c = it->second;
      std::string actual;
      if (c.kind == PortConn::Kind::kConst) {
        actual = bit_literal(c.const_value, p.width);
      } else {
        const auto& net = m.net(c.net);
        const std::string net_name = sanitize_identifier(net.name);
        if (c.replicate && p.width > 1) {
          // VHDL port maps cannot replicate; use a helper signal.
          std::string h = "rep_" + std::to_string(helper++);
          helper_decls << "  signal " << h << " : " << bus_type(p.width)
                       << ";\n";
          helper_assigns << "  " << h << " <= (others => "
                         << slice_ref(net_name, net.width, c.lo, 1)
                         << ");\n";
          actual = h;
        } else if (c.replicate) {
          actual = slice_ref(net_name, net.width, c.lo, 1);
        } else {
          actual = slice_ref(net_name, net.width, c.lo, p.width);
        }
      }
      bindings.push_back(sanitize_identifier(p.name) + " => " + actual);
    }
    for (size_t i = 0; i < bindings.size(); ++i) {
      body << "      " << bindings[i]
           << (i + 1 == bindings.size() ? ");" : ",") << "\n";
    }
  }
  os << helper_decls.str();
  os << "begin\n";
  os << helper_assigns.str();
  os << body.str();
  os << "end architecture structural;\n\n";
}

}  // namespace

std::string sanitize_identifier(const std::string& name) {
  return bridge::sanitize_identifier(name);
}

const std::string& EmissionCache::module_text(const Module& m) {
  auto it = memo_.find(&m);
  if (it != memo_.end()) return it->second;
  std::ostringstream os;
  emit_module(os, m);
  return memo_.emplace(&m, os.str()).first->second;
}

std::string emit_structural(const Module& module) {
  obs::Span span("emit", "vhdl");
  std::ostringstream os;
  os << "library ieee;\nuse ieee.std_logic_1164.all;\n\n";
  emit_module(os, module);
  return os.str();
}

std::string emit_structural(const netlist::Design& design,
                            EmissionCache& cache) {
  obs::Span span("emit", "vhdl");
  std::string out = "-- structural VHDL for design '" + design.name() +
                    "'\nlibrary ieee;\nuse ieee.std_logic_1164.all;\n\n";
  // Children first so every referenced entity precedes its use.
  for (const Module* m : design.module_order()) {
    if (m != design.top()) out += cache.module_text(*m);
  }
  if (design.top() != nullptr) out += cache.module_text(*design.top());
  return out;
}

std::string emit_structural(const netlist::Design& design) {
  EmissionCache cache;
  return emit_structural(design, cache);
}

std::string emit_behavioral(const genus::Component& component) {
  obs::Span span("emit", "vhdl");
  std::ostringstream os;
  const std::string name = sanitize_identifier(component.name());
  os << "-- behavioral model generated from GENUS generator '"
     << component.generator_name() << "'\n";
  os << "library ieee;\nuse ieee.std_logic_1164.all;\n";
  os << "use ieee.numeric_std.all;\n\n";
  emit_entity(os, name, component.ports());

  os << "architecture behavior of " << name << " is\nbegin\n";
  const bool sequential = genus::kind_is_sequential(component.spec().kind);
  std::vector<std::string> sensitivity;
  std::string clock;
  for (const auto& p : component.ports()) {
    if (p.dir != PortDir::kIn) continue;
    if (p.role == genus::PortRole::kClock) {
      clock = sanitize_identifier(p.name);
      continue;
    }
    sensitivity.push_back(sanitize_identifier(p.name));
  }
  if (sequential && !clock.empty()) {
    os << "  process (" << clock << ")\n  begin\n";
    os << "    if rising_edge(" << clock << ") then\n";
    for (const auto& op : component.operations()) {
      os << "      -- " << op.name;
      if (!op.control.empty()) os << " (when " << op.control << " = '1')";
      os << ": " << op.semantics << "\n";
    }
    bool first = true;
    for (const auto& op : component.operations()) {
      if (op.control.empty()) continue;
      os << "      " << (first ? "if" : "elsif") << " "
         << sanitize_identifier(op.control) << " = '1' then\n";
      os << "        null;  -- " << op.semantics << "\n";
      first = false;
    }
    if (!first) os << "      end if;\n";
    os << "    end if;\n  end process;\n";
  } else {
    os << "  process (" << join(sensitivity, ", ") << ")\n  begin\n";
    for (const auto& op : component.operations()) {
      os << "    -- " << op.name << ": " << op.semantics << "\n";
    }
    os << "    null;\n  end process;\n";
  }
  os << "end architecture behavior;\n";
  return os.str();
}

}  // namespace bridge::vhdl
