// VHDL back end.
//
// Figure 1: high-level synthesis emits "a netlist of GENUS components
// described using structural VHDL", and DTAS's hierarchical netlists "can
// be output in structural VHDL and passed to other tools for analysis,
// optimization, and layout". GENUS generators additionally "produce
// simulatable VHDL behavioral models for the generated components".
#pragma once

#include <string>
#include <unordered_map>

#include "genus/component.h"
#include "netlist/netlist.h"

namespace bridge::vhdl {

/// Memoizes the structural text of modules by address across emit calls.
/// The alternative designs of one synthesis front share almost every
/// module (see dtas::ExtractionCache), so emitting the front through one
/// EmissionCache renders each distinct module once instead of once per
/// design. Keyed by address: every module passed in must be immutable and
/// must outlive the cache (shared extraction modules and front designs
/// held alive by their AlternativeDesign both qualify).
class EmissionCache {
 public:
  /// Entity + architecture text of `m` (see emit_structural), cached.
  const std::string& module_text(const netlist::Module& m);

  std::size_t size() const { return memo_.size(); }

 private:
  std::unordered_map<const netlist::Module*, std::string> memo_;
};

/// Emit a hierarchical design as structural VHDL: one entity/architecture
/// pair per module (leaves referenced through component declarations),
/// with bit-slice, constant, and replication bindings lowered to
/// intermediate signals where VHDL requires it.
std::string emit_structural(const netlist::Design& design);

/// The same output, with per-module text served from (and published to)
/// `cache` — use one cache across a whole front so shared modules are
/// rendered once.
std::string emit_structural(const netlist::Design& design,
                            EmissionCache& cache);

/// Emit one module (plus component declarations) as structural VHDL.
std::string emit_structural(const netlist::Module& module);

/// Emit a simulatable behavioral model of a generated GENUS component:
/// entity from the component's ports, architecture from its operations'
/// register-transfer semantics.
std::string emit_behavioral(const genus::Component& component);

/// VHDL-legal identifier derived from an arbitrary name.
std::string sanitize_identifier(const std::string& name);

}  // namespace bridge::vhdl
