// VHDL back end.
//
// Figure 1: high-level synthesis emits "a netlist of GENUS components
// described using structural VHDL", and DTAS's hierarchical netlists "can
// be output in structural VHDL and passed to other tools for analysis,
// optimization, and layout". GENUS generators additionally "produce
// simulatable VHDL behavioral models for the generated components".
#pragma once

#include <string>

#include "genus/component.h"
#include "netlist/netlist.h"

namespace bridge::vhdl {

/// Emit a hierarchical design as structural VHDL: one entity/architecture
/// pair per module (leaves referenced through component declarations),
/// with bit-slice, constant, and replication bindings lowered to
/// intermediate signals where VHDL requires it.
std::string emit_structural(const netlist::Design& design);

/// Emit one module (plus component declarations) as structural VHDL.
std::string emit_structural(const netlist::Module& module);

/// Emit a simulatable behavioral model of a generated GENUS component:
/// entity from the component's ports, architecture from its operations'
/// register-transfer semantics.
std::string emit_behavioral(const genus::Component& component);

/// VHDL-legal identifier derived from an arbitrary name.
std::string sanitize_identifier(const std::string& name);

}  // namespace bridge::vhdl
