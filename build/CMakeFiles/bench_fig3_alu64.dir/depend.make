# Empty dependencies file for bench_fig3_alu64.
# This may be replaced when dependencies are built.
