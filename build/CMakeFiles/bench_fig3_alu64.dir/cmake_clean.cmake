file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_alu64.dir/bench/bench_fig3_alu64.cpp.o"
  "CMakeFiles/bench_fig3_alu64.dir/bench/bench_fig3_alu64.cpp.o.d"
  "bench_fig3_alu64"
  "bench_fig3_alu64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_alu64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
