file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_components.dir/bench/bench_tab1_components.cpp.o"
  "CMakeFiles/bench_tab1_components.dir/bench/bench_tab1_components.cpp.o.d"
  "bench_tab1_components"
  "bench_tab1_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
