# Empty dependencies file for bench_tab1_components.
# This may be replaced when dependencies are built.
