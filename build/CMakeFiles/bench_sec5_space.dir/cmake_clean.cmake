file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_space.dir/bench/bench_sec5_space.cpp.o"
  "CMakeFiles/bench_sec5_space.dir/bench/bench_sec5_space.cpp.o.d"
  "bench_sec5_space"
  "bench_sec5_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
