# Empty dependencies file for bench_sec5_space.
# This may be replaced when dependencies are built.
