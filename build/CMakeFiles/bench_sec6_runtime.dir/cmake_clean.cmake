file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_runtime.dir/bench/bench_sec6_runtime.cpp.o"
  "CMakeFiles/bench_sec6_runtime.dir/bench/bench_sec6_runtime.cpp.o.d"
  "bench_sec6_runtime"
  "bench_sec6_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
