# Empty dependencies file for bench_sec6_runtime.
# This may be replaced when dependencies are built.
