file(REMOVE_RECURSE
  "CMakeFiles/lola_test.dir/tests/lola_test.cpp.o"
  "CMakeFiles/lola_test.dir/tests/lola_test.cpp.o.d"
  "lola_test"
  "lola_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lola_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
