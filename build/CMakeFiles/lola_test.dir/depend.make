# Empty dependencies file for lola_test.
# This may be replaced when dependencies are built.
