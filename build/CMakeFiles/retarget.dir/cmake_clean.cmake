file(REMOVE_RECURSE
  "CMakeFiles/retarget.dir/examples/retarget.cpp.o"
  "CMakeFiles/retarget.dir/examples/retarget.cpp.o.d"
  "retarget"
  "retarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
