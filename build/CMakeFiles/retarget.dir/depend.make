# Empty dependencies file for retarget.
# This may be replaced when dependencies are built.
