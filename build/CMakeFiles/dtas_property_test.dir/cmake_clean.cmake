file(REMOVE_RECURSE
  "CMakeFiles/dtas_property_test.dir/tests/dtas_property_test.cpp.o"
  "CMakeFiles/dtas_property_test.dir/tests/dtas_property_test.cpp.o.d"
  "dtas_property_test"
  "dtas_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtas_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
