# Empty dependencies file for dtas_property_test.
# This may be replaced when dependencies are built.
