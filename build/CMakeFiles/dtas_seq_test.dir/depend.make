# Empty dependencies file for dtas_seq_test.
# This may be replaced when dependencies are built.
