file(REMOVE_RECURSE
  "CMakeFiles/dtas_seq_test.dir/tests/dtas_seq_test.cpp.o"
  "CMakeFiles/dtas_seq_test.dir/tests/dtas_seq_test.cpp.o.d"
  "dtas_seq_test"
  "dtas_seq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtas_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
