file(REMOVE_RECURSE
  "CMakeFiles/bench_retarget_libraries.dir/bench/bench_retarget_libraries.cpp.o"
  "CMakeFiles/bench_retarget_libraries.dir/bench/bench_retarget_libraries.cpp.o.d"
  "bench_retarget_libraries"
  "bench_retarget_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retarget_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
