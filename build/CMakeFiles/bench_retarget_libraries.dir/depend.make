# Empty dependencies file for bench_retarget_libraries.
# This may be replaced when dependencies are built.
