# Empty dependencies file for sim_vhdl_dag_test.
# This may be replaced when dependencies are built.
