file(REMOVE_RECURSE
  "CMakeFiles/sim_vhdl_dag_test.dir/tests/sim_vhdl_dag_test.cpp.o"
  "CMakeFiles/sim_vhdl_dag_test.dir/tests/sim_vhdl_dag_test.cpp.o.d"
  "sim_vhdl_dag_test"
  "sim_vhdl_dag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_vhdl_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
