file(REMOVE_RECURSE
  "CMakeFiles/dtas_adder_test.dir/tests/dtas_adder_test.cpp.o"
  "CMakeFiles/dtas_adder_test.dir/tests/dtas_adder_test.cpp.o.d"
  "dtas_adder_test"
  "dtas_adder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtas_adder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
