# Empty dependencies file for dtas_adder_test.
# This may be replaced when dependencies are built.
