
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/bitvec.cpp" "CMakeFiles/bridge.dir/src/base/bitvec.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/base/bitvec.cpp.o.d"
  "/root/repo/src/base/diag.cpp" "CMakeFiles/bridge.dir/src/base/diag.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/base/diag.cpp.o.d"
  "/root/repo/src/base/fileio.cpp" "CMakeFiles/bridge.dir/src/base/fileio.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/base/fileio.cpp.o.d"
  "/root/repo/src/base/strutil.cpp" "CMakeFiles/bridge.dir/src/base/strutil.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/base/strutil.cpp.o.d"
  "/root/repo/src/base/widthexpr.cpp" "CMakeFiles/bridge.dir/src/base/widthexpr.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/base/widthexpr.cpp.o.d"
  "/root/repo/src/cells/cell.cpp" "CMakeFiles/bridge.dir/src/cells/cell.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/cells/cell.cpp.o.d"
  "/root/repo/src/cells/databook.cpp" "CMakeFiles/bridge.dir/src/cells/databook.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/cells/databook.cpp.o.d"
  "/root/repo/src/cells/lsi_library.cpp" "CMakeFiles/bridge.dir/src/cells/lsi_library.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/cells/lsi_library.cpp.o.d"
  "/root/repo/src/cells/registry.cpp" "CMakeFiles/bridge.dir/src/cells/registry.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/cells/registry.cpp.o.d"
  "/root/repo/src/cells/ttl_library.cpp" "CMakeFiles/bridge.dir/src/cells/ttl_library.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/cells/ttl_library.cpp.o.d"
  "/root/repo/src/ctrl/control_compiler.cpp" "CMakeFiles/bridge.dir/src/ctrl/control_compiler.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/ctrl/control_compiler.cpp.o.d"
  "/root/repo/src/ctrl/qm.cpp" "CMakeFiles/bridge.dir/src/ctrl/qm.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/ctrl/qm.cpp.o.d"
  "/root/repo/src/dag/dagon.cpp" "CMakeFiles/bridge.dir/src/dag/dagon.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dag/dagon.cpp.o.d"
  "/root/repo/src/dtas/design_space.cpp" "CMakeFiles/bridge.dir/src/dtas/design_space.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/design_space.cpp.o.d"
  "/root/repo/src/dtas/rule.cpp" "CMakeFiles/bridge.dir/src/dtas/rule.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rule.cpp.o.d"
  "/root/repo/src/dtas/rules_alu.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_alu.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_alu.cpp.o.d"
  "/root/repo/src/dtas/rules_arith.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_arith.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_arith.cpp.o.d"
  "/root/repo/src/dtas/rules_codec.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_codec.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_codec.cpp.o.d"
  "/root/repo/src/dtas/rules_compare_shift.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_compare_shift.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_compare_shift.cpp.o.d"
  "/root/repo/src/dtas/rules_gate.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_gate.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_gate.cpp.o.d"
  "/root/repo/src/dtas/rules_library.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_library.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_library.cpp.o.d"
  "/root/repo/src/dtas/rules_mux.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_mux.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_mux.cpp.o.d"
  "/root/repo/src/dtas/rules_seq.cpp" "CMakeFiles/bridge.dir/src/dtas/rules_seq.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/rules_seq.cpp.o.d"
  "/root/repo/src/dtas/synthesizer.cpp" "CMakeFiles/bridge.dir/src/dtas/synthesizer.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/dtas/synthesizer.cpp.o.d"
  "/root/repo/src/genus/component.cpp" "CMakeFiles/bridge.dir/src/genus/component.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/component.cpp.o.d"
  "/root/repo/src/genus/generator.cpp" "CMakeFiles/bridge.dir/src/genus/generator.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/generator.cpp.o.d"
  "/root/repo/src/genus/kind.cpp" "CMakeFiles/bridge.dir/src/genus/kind.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/kind.cpp.o.d"
  "/root/repo/src/genus/library.cpp" "CMakeFiles/bridge.dir/src/genus/library.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/library.cpp.o.d"
  "/root/repo/src/genus/optype.cpp" "CMakeFiles/bridge.dir/src/genus/optype.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/optype.cpp.o.d"
  "/root/repo/src/genus/param.cpp" "CMakeFiles/bridge.dir/src/genus/param.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/param.cpp.o.d"
  "/root/repo/src/genus/spec.cpp" "CMakeFiles/bridge.dir/src/genus/spec.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/spec.cpp.o.d"
  "/root/repo/src/genus/taxonomy.cpp" "CMakeFiles/bridge.dir/src/genus/taxonomy.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/genus/taxonomy.cpp.o.d"
  "/root/repo/src/hls/fsmd.cpp" "CMakeFiles/bridge.dir/src/hls/fsmd.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/hls/fsmd.cpp.o.d"
  "/root/repo/src/hls/parser.cpp" "CMakeFiles/bridge.dir/src/hls/parser.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/hls/parser.cpp.o.d"
  "/root/repo/src/hls/statetable.cpp" "CMakeFiles/bridge.dir/src/hls/statetable.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/hls/statetable.cpp.o.d"
  "/root/repo/src/legend/converter.cpp" "CMakeFiles/bridge.dir/src/legend/converter.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/legend/converter.cpp.o.d"
  "/root/repo/src/legend/parser.cpp" "CMakeFiles/bridge.dir/src/legend/parser.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/legend/parser.cpp.o.d"
  "/root/repo/src/liberty/boolexpr.cpp" "CMakeFiles/bridge.dir/src/liberty/boolexpr.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/liberty/boolexpr.cpp.o.d"
  "/root/repo/src/liberty/infer.cpp" "CMakeFiles/bridge.dir/src/liberty/infer.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/liberty/infer.cpp.o.d"
  "/root/repo/src/liberty/parser.cpp" "CMakeFiles/bridge.dir/src/liberty/parser.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/liberty/parser.cpp.o.d"
  "/root/repo/src/lola/lola.cpp" "CMakeFiles/bridge.dir/src/lola/lola.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/lola/lola.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "CMakeFiles/bridge.dir/src/netlist/netlist.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/netlist/netlist.cpp.o.d"
  "/root/repo/src/sim/rtl_expr.cpp" "CMakeFiles/bridge.dir/src/sim/rtl_expr.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/sim/rtl_expr.cpp.o.d"
  "/root/repo/src/sim/semantics.cpp" "CMakeFiles/bridge.dir/src/sim/semantics.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/sim/semantics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/bridge.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/vhdl/vhdl.cpp" "CMakeFiles/bridge.dir/src/vhdl/vhdl.cpp.o" "gcc" "CMakeFiles/bridge.dir/src/vhdl/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
