file(REMOVE_RECURSE
  "CMakeFiles/genus_test.dir/tests/genus_test.cpp.o"
  "CMakeFiles/genus_test.dir/tests/genus_test.cpp.o.d"
  "genus_test"
  "genus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
