# Empty dependencies file for genus_test.
# This may be replaced when dependencies are built.
