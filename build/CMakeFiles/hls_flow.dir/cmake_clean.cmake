file(REMOVE_RECURSE
  "CMakeFiles/hls_flow.dir/examples/hls_flow.cpp.o"
  "CMakeFiles/hls_flow.dir/examples/hls_flow.cpp.o.d"
  "hls_flow"
  "hls_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
