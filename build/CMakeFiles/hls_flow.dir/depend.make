# Empty dependencies file for hls_flow.
# This may be replaced when dependencies are built.
