file(REMOVE_RECURSE
  "CMakeFiles/counter_design.dir/examples/counter_design.cpp.o"
  "CMakeFiles/counter_design.dir/examples/counter_design.cpp.o.d"
  "counter_design"
  "counter_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
