# Empty dependencies file for counter_design.
# This may be replaced when dependencies are built.
