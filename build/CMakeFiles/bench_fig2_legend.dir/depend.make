# Empty dependencies file for bench_fig2_legend.
# This may be replaced when dependencies are built.
