file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_legend.dir/bench/bench_fig2_legend.cpp.o"
  "CMakeFiles/bench_fig2_legend.dir/bench/bench_fig2_legend.cpp.o.d"
  "bench_fig2_legend"
  "bench_fig2_legend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_legend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
