# Empty dependencies file for legend_test.
# This may be replaced when dependencies are built.
