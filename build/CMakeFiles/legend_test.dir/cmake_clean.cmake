file(REMOVE_RECURSE
  "CMakeFiles/legend_test.dir/tests/legend_test.cpp.o"
  "CMakeFiles/legend_test.dir/tests/legend_test.cpp.o.d"
  "legend_test"
  "legend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
