file(REMOVE_RECURSE
  "CMakeFiles/dtas_equiv_test.dir/tests/dtas_equiv_test.cpp.o"
  "CMakeFiles/dtas_equiv_test.dir/tests/dtas_equiv_test.cpp.o.d"
  "dtas_equiv_test"
  "dtas_equiv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtas_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
