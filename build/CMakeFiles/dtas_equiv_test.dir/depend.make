# Empty dependencies file for dtas_equiv_test.
# This may be replaced when dependencies are built.
