# Empty dependencies file for bench_dag_vs_functional.
# This may be replaced when dependencies are built.
