file(REMOVE_RECURSE
  "CMakeFiles/bench_dag_vs_functional.dir/bench/bench_dag_vs_functional.cpp.o"
  "CMakeFiles/bench_dag_vs_functional.dir/bench/bench_dag_vs_functional.cpp.o.d"
  "bench_dag_vs_functional"
  "bench_dag_vs_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag_vs_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
