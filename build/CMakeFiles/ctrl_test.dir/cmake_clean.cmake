file(REMOVE_RECURSE
  "CMakeFiles/ctrl_test.dir/tests/ctrl_test.cpp.o"
  "CMakeFiles/ctrl_test.dir/tests/ctrl_test.cpp.o.d"
  "ctrl_test"
  "ctrl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctrl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
