# Empty dependencies file for ctrl_test.
# This may be replaced when dependencies are built.
