file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_coverage.dir/bench/bench_sec7_coverage.cpp.o"
  "CMakeFiles/bench_sec7_coverage.dir/bench/bench_sec7_coverage.cpp.o.d"
  "bench_sec7_coverage"
  "bench_sec7_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
