# Empty dependencies file for bench_sec7_coverage.
# This may be replaced when dependencies are built.
