# Empty dependencies file for rtl_expr_test.
# This may be replaced when dependencies are built.
