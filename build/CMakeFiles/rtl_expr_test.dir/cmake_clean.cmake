file(REMOVE_RECURSE
  "CMakeFiles/rtl_expr_test.dir/tests/rtl_expr_test.cpp.o"
  "CMakeFiles/rtl_expr_test.dir/tests/rtl_expr_test.cpp.o.d"
  "rtl_expr_test"
  "rtl_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
